package prog

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// HPCCG (Mantevo): a conjugate-gradient solve of a 7-point-stencil Poisson
// system on an nx×ny×nz grid, with an LCG-generated right-hand side. Faults
// in the solution, residual or direction vectors propagate through many
// iterations into the printed residual and solution checksum, so the SDC
// probability is high across the whole input space — the paper's densest
// benchmark (36.75-48.20 % over random inputs).
//
// Inputs: nx, ny, nz (grid shape), maxIter, seed. Output: the final
// residual norm and the solution checksum.

func init() { register("hpccg", buildHPCCG) }

func hpccgArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "nx", Kind: ArgInt, Min: 2, Max: 5, SmallMin: 2, SmallMax: 3, Ref: 4},
		{Name: "ny", Kind: ArgInt, Min: 2, Max: 5, SmallMin: 2, SmallMax: 3, Ref: 4},
		{Name: "nz", Kind: ArgInt, Min: 2, Max: 5, SmallMin: 2, SmallMax: 3, Ref: 4},
		{Name: "maxIter", Kind: ArgInt, Min: 5, Max: 40, SmallMin: 5, SmallMax: 10, Ref: 30},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 17},
	}
}

func buildHPCCG() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("hpccg")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "nx", Ty: ir.I64},
		&ir.Param{Name: "ny", Ty: ir.I64},
		&ir.Param{Name: "nz", Ty: ir.I64},
		&ir.Param{Name: "maxIter", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	nx := b.Param(0)
	ny := b.Param(1)
	nz := b.Param(2)
	maxIter := b.Param(3)
	seed := b.Param(4)

	n := b.Mul(b.Mul(nx, ny), nz)
	state := h.newVar(ir.I64, seed)

	xv := b.Alloca(n)  // solution
	bv := b.Alloca(n)  // rhs
	rv := b.Alloca(n)  // residual
	pv := b.Alloca(n)  // direction
	apv := b.Alloca(n) // A*p

	// b = 1 + lcgF64; x = 0; r = b; p = r.
	h.loop("init", ir.I64c(0), n, func(i ir.Value) {
		rhs := b.FAdd(ir.F64c(1), h.lcgF64(state))
		b.Store(rhs, b.GEP(bv, i))
		b.Store(ir.F64c(0), b.GEP(xv, i))
		b.Store(rhs, b.GEP(rv, i))
		b.Store(rhs, b.GEP(pv, i))
	})

	// spmv computes apv = A*p for the 7-point stencil: diag 7, off-diag -1
	// to the six axis neighbours (Dirichlet boundaries).
	nxny := b.Mul(nx, ny)
	spmv := func() {
		h.loop("spmv.k", ir.I64c(0), nz, func(k ir.Value) {
			h.loop("spmv.j", ir.I64c(0), ny, func(j ir.Value) {
				h.loop("spmv.i", ir.I64c(0), nx, func(i ir.Value) {
					row := b.Add(b.Add(b.Mul(k, nxny), b.Mul(j, nx)), i)
					acc := h.newVar(ir.F64, b.FMul(ir.F64c(7), b.Load(ir.F64, b.GEP(pv, row))))
					nb := func(cond ir.Value, off ir.Value) {
						h.ifThen("nb", cond, func() {
							h.set(acc, b.FSub(h.get(acc), b.Load(ir.F64, b.GEP(pv, b.Add(row, off)))))
						})
					}
					nb(b.ICmp(ir.OpICmpSGT, i, ir.I64c(0)), ir.I64c(-1))
					nb(b.ICmp(ir.OpICmpSLT, i, b.Sub(nx, ir.I64c(1))), ir.I64c(1))
					nb(b.ICmp(ir.OpICmpSGT, j, ir.I64c(0)), b.Sub(ir.I64c(0), nx))
					nb(b.ICmp(ir.OpICmpSLT, j, b.Sub(ny, ir.I64c(1))), nx)
					nb(b.ICmp(ir.OpICmpSGT, k, ir.I64c(0)), b.Sub(ir.I64c(0), nxny))
					nb(b.ICmp(ir.OpICmpSLT, k, b.Sub(nz, ir.I64c(1))), nxny)
					b.Store(h.get(acc), b.GEP(apv, row))
				})
			})
		})
	}

	dot := func(u, w *ir.Instr) *ir.Instr {
		s := h.newVar(ir.F64, ir.F64c(0))
		h.loop("dot", ir.I64c(0), n, func(i ir.Value) {
			h.faddVar(s, b.FMul(b.Load(ir.F64, b.GEP(u, i)), b.Load(ir.F64, b.GEP(w, i))))
		})
		return h.get(s)
	}

	rtrans := h.newVar(ir.F64, ir.F64c(0))
	h.set(rtrans, dot(rv, rv))
	iters := h.newVar(ir.I64, ir.I64c(0))

	h.while("cg", func() ir.Value {
		notDone := b.ICmp(ir.OpICmpSLT, h.get(iters), maxIter)
		big := b.FCmp(ir.OpFCmpOGT, h.get(rtrans), ir.F64c(1e-16))
		return b.And(notDone, big)
	}, func() {
		spmv()
		alpha := b.FDiv(h.get(rtrans), dot(pv, apv))
		// x += alpha p; r -= alpha Ap.
		h.loop("axpy", ir.I64c(0), n, func(i ir.Value) {
			xp := b.GEP(xv, i)
			b.Store(b.FAdd(b.Load(ir.F64, xp), b.FMul(alpha, b.Load(ir.F64, b.GEP(pv, i)))), xp)
			rp := b.GEP(rv, i)
			b.Store(b.FSub(b.Load(ir.F64, rp), b.FMul(alpha, b.Load(ir.F64, b.GEP(apv, i)))), rp)
		})
		newRtrans := dot(rv, rv)
		beta := b.FDiv(newRtrans, h.get(rtrans))
		h.set(rtrans, newRtrans)
		// p = r + beta p.
		h.loop("pupd", ir.I64c(0), n, func(i ir.Value) {
			pp := b.GEP(pv, i)
			b.Store(b.FAdd(b.Load(ir.F64, b.GEP(rv, i)), b.FMul(beta, b.Load(ir.F64, pp))), pp)
		})
		h.addVar(iters, ir.I64c(1))
	})

	h.printF64(b.Call(ir.F64, "sqrt", h.get(rtrans)))
	// Diagnostic path taken only when CG failed to converge within the
	// iteration budget: report the max-abs residual component. Whether this
	// region executes — and the extra output — depends on the input.
	h.ifThen("diag", b.FCmp(ir.OpFCmpOGT, h.get(rtrans), ir.F64c(1e-16)), func() {
		worst := h.newVar(ir.F64, ir.F64c(0))
		h.loop("diag.scan", ir.I64c(0), n, func(i ir.Value) {
			a := b.Call(ir.F64, "fabs", b.Load(ir.F64, b.GEP(rv, i)))
			bigger := b.FCmp(ir.OpFCmpOGT, a, h.get(worst))
			h.set(worst, b.Select(bigger, a, h.get(worst)))
		})
		h.printF64(h.get(worst))
	})
	cs := h.newVar(ir.F64, ir.F64c(0))
	h.loop("cs", ir.I64c(0), n, func(i ir.Value) {
		h.faddVar(cs, b.Load(ir.F64, b.GEP(xv, i)))
	})
	h.printF64(h.get(cs))
	b.Ret(nil)

	return m, hpccgArgs(), "Mantevo",
		"conjugate gradient solve of a 7-point-stencil system on a 3-D chimney domain", 900000
}

// oracleHPCCG mirrors the IR program in Go.
func oracleHPCCG(nx, ny, nz, maxIter, seed int64) []float64 {
	n := nx * ny * nz
	lcg := newGoLCG(seed)
	x := make([]float64, n)
	bb := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	for i := int64(0); i < n; i++ {
		rhs := 1 + lcg.f64()
		bb[i] = rhs
		x[i] = 0
		r[i] = rhs
		p[i] = rhs
	}
	_ = bb
	nxny := nx * ny
	spmv := func() {
		for k := int64(0); k < nz; k++ {
			for j := int64(0); j < ny; j++ {
				for i := int64(0); i < nx; i++ {
					row := k*nxny + j*nx + i
					acc := 7 * p[row]
					if i > 0 {
						acc -= p[row-1]
					}
					if i < nx-1 {
						acc -= p[row+1]
					}
					if j > 0 {
						acc -= p[row-nx]
					}
					if j < ny-1 {
						acc -= p[row+nx]
					}
					if k > 0 {
						acc -= p[row-nxny]
					}
					if k < nz-1 {
						acc -= p[row+nxny]
					}
					ap[row] = acc
				}
			}
		}
	}
	dot := func(u, w []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * w[i]
		}
		return s
	}
	rtrans := dot(r, r)
	iters := int64(0)
	for iters < maxIter && rtrans > 1e-16 {
		spmv()
		alpha := rtrans / dot(p, ap)
		for i := int64(0); i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		newRtrans := dot(r, r)
		beta := newRtrans / rtrans
		rtrans = newRtrans
		for i := int64(0); i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
		iters++
	}
	out := []float64{interp.QuantizeOutput(math.Sqrt(rtrans))}
	if rtrans > 1e-16 {
		var worst float64
		for i := int64(0); i < n; i++ {
			a := math.Abs(r[i])
			if a > worst {
				worst = a
			}
		}
		out = append(out, interp.QuantizeOutput(worst))
	}
	var cs float64
	for i := int64(0); i < n; i++ {
		cs += x[i]
	}
	return append(out, interp.QuantizeOutput(cs))
}
