package prog

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Particlefilter (Rodinia): a Bayesian particle filter tracking an object
// moving with constant velocity through noisy observations. Each frame
// propagates particles with process noise, weights them by a Gaussian
// likelihood of the noisy measurement, normalizes, estimates the posterior
// mean, and systematically resamples. The weight normalization partially
// masks corrupted weights, while corrupted positions flow into the printed
// per-frame estimates.
//
// Inputs: np (particles), frames, seed, sigma (noise scale). Output: the
// estimated (x, y) per frame.

func init() { register("particlefilter", buildParticlefilter) }

func particlefilterArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "np", Kind: ArgInt, Min: 8, Max: 128, SmallMin: 8, SmallMax: 16, Ref: 64},
		{Name: "frames", Kind: ArgInt, Min: 2, Max: 16, SmallMin: 2, SmallMax: 4, Ref: 4},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 5},
		{Name: "sigma", Kind: ArgFloat, Min: 0.2, Max: 5, SmallMin: 0.5, SmallMax: 1.5, Ref: 1.5},
	}
}

func buildParticlefilter() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("particlefilter")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "np", Ty: ir.I64},
		&ir.Param{Name: "frames", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
		&ir.Param{Name: "sigma", Ty: ir.F64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	np := b.Param(0)
	frames := b.Param(1)
	seed := b.Param(2)
	sigma := b.Param(3)

	state := h.newVar(ir.I64, seed)
	px := b.Alloca(np)
	py := b.Alloca(np)
	w := b.Alloca(np)
	npx := b.Alloca(np)
	npy := b.Alloca(np)

	// Initialize particles around the origin.
	h.loop("init", ir.I64c(0), np, func(i ir.Value) {
		b.Store(b.FSub(b.FMul(h.lcgF64(state), ir.F64c(2)), ir.F64c(1)), b.GEP(px, i))
		b.Store(b.FSub(b.FMul(h.lcgF64(state), ir.F64c(2)), ir.F64c(1)), b.GEP(py, i))
	})

	tx := h.newVar(ir.F64, ir.F64c(0))
	ty := h.newVar(ir.F64, ir.F64c(0))
	npf := b.SIToFP(np)
	twoSigma2 := b.FMul(b.FMul(sigma, sigma), ir.F64c(2))

	h.loop("frame", ir.I64c(0), frames, func(fr ir.Value) {
		_ = fr
		// True object motion.
		h.set(tx, b.FAdd(h.get(tx), ir.F64c(1)))
		h.set(ty, b.FAdd(h.get(ty), ir.F64c(0.5)))

		// Propagate particles with process noise.
		h.loop("prop", ir.I64c(0), np, func(i ir.Value) {
			nx := b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), sigma)
			pxp := b.GEP(px, i)
			b.Store(b.FAdd(b.FAdd(b.Load(ir.F64, pxp), ir.F64c(1)), nx), pxp)
			ny := b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), sigma)
			pyp := b.GEP(py, i)
			b.Store(b.FAdd(b.FAdd(b.Load(ir.F64, pyp), ir.F64c(0.5)), ny), pyp)
		})

		// Noisy observation of the true position.
		ox := b.FAdd(h.get(tx), b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), b.FMul(sigma, ir.F64c(0.5))))
		oy := b.FAdd(h.get(ty), b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), b.FMul(sigma, ir.F64c(0.5))))

		// Gaussian likelihood weights.
		wsum := h.newVar(ir.F64, ir.F64c(0))
		h.loop("weight", ir.I64c(0), np, func(i ir.Value) {
			dx := b.FSub(b.Load(ir.F64, b.GEP(px, i)), ox)
			dy := b.FSub(b.Load(ir.F64, b.GEP(py, i)), oy)
			d2 := b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy))
			wi := b.Call(ir.F64, "exp", b.FDiv(b.FSub(ir.F64c(0), d2), twoSigma2))
			b.Store(wi, b.GEP(w, i))
			h.faddVar(wsum, wi)
		})

		// Normalize (guard against total weight underflow: fall back to
		// uniform weights, as the reference implementation does).
		total := h.get(wsum)
		h.ifElse("norm", b.FCmp(ir.OpFCmpOGT, total, ir.F64c(1e-300)),
			func() {
				h.loop("norm.div", ir.I64c(0), np, func(i ir.Value) {
					wp := b.GEP(w, i)
					b.Store(b.FDiv(b.Load(ir.F64, wp), total), wp)
				})
			},
			func() {
				uni := b.FDiv(ir.F64c(1), npf)
				h.loop("norm.uni", ir.I64c(0), np, func(i ir.Value) {
					b.Store(uni, b.GEP(w, i))
				})
			})

		// Posterior mean estimate.
		xe := h.newVar(ir.F64, ir.F64c(0))
		ye := h.newVar(ir.F64, ir.F64c(0))
		h.loop("est", ir.I64c(0), np, func(i ir.Value) {
			wi := b.Load(ir.F64, b.GEP(w, i))
			h.faddVar(xe, b.FMul(wi, b.Load(ir.F64, b.GEP(px, i))))
			h.faddVar(ye, b.FMul(wi, b.Load(ir.F64, b.GEP(py, i))))
		})
		h.printF64(h.get(xe))
		h.printF64(h.get(ye))

		// Adaptive systematic resampling: only when the effective sample
		// size 1/Σwᵢ² falls below half the particle count (degenerate
		// weights), as production particle filters do. Which frames
		// resample — and hence the dynamic footprint and static coverage —
		// depends on the noise input.
		ess2 := h.newVar(ir.F64, ir.F64c(0))
		h.loop("ess", ir.I64c(0), np, func(i ir.Value) {
			wi := b.Load(ir.F64, b.GEP(w, i))
			h.faddVar(ess2, b.FMul(wi, wi))
		})
		ess := b.FDiv(ir.F64c(1), h.get(ess2))
		degenerate := b.FCmp(ir.OpFCmpOLT, ess, b.FMul(npf, ir.F64c(0.5)))
		h.ifThen("resample", degenerate, func() {
			u0 := b.FDiv(h.lcgF64(state), npf)
			cw := h.newVar(ir.F64, b.Load(ir.F64, b.GEP(w, ir.I64c(0))))
			idx := h.newVar(ir.I64, ir.I64c(0))
			npM1 := b.Sub(np, ir.I64c(1))
			h.loop("resample.j", ir.I64c(0), np, func(j ir.Value) {
				u := b.FAdd(u0, b.FDiv(b.SIToFP(j), npf))
				h.while("walk", func() ir.Value {
					below := b.FCmp(ir.OpFCmpOGT, u, h.get(cw))
					notLast := b.ICmp(ir.OpICmpSLT, h.get(idx), npM1)
					return b.And(below, notLast)
				}, func() {
					h.addVar(idx, ir.I64c(1))
					h.faddVar(cw, b.Load(ir.F64, b.GEP(w, h.get(idx))))
				})
				b.Store(b.Load(ir.F64, b.GEP(px, h.get(idx))), b.GEP(npx, j))
				b.Store(b.Load(ir.F64, b.GEP(py, h.get(idx))), b.GEP(npy, j))
			})
			h.loop("copyback", ir.I64c(0), np, func(i ir.Value) {
				b.Store(b.Load(ir.F64, b.GEP(npx, i)), b.GEP(px, i))
				b.Store(b.Load(ir.F64, b.GEP(npy, i)), b.GEP(py, i))
			})
		})
	})
	b.Ret(nil)

	return m, particlefilterArgs(), "Rodinia",
		"Bayesian particle filter estimating a target location from noisy measurements", 800000
}

// oracleParticlefilter mirrors the IR program in Go.
func oracleParticlefilter(np, frames, seed int64, sigma float64) []float64 {
	lcg := newGoLCG(seed)
	px := make([]float64, np)
	py := make([]float64, np)
	w := make([]float64, np)
	npx := make([]float64, np)
	npy := make([]float64, np)
	for i := range px {
		px[i] = lcg.f64()*2 - 1
		py[i] = lcg.f64()*2 - 1
	}
	var tx, ty float64
	npf := float64(np)
	twoSigma2 := sigma * sigma * 2
	var out []float64
	for fr := int64(0); fr < frames; fr++ {
		tx += 1
		ty += 0.5
		for i := range px {
			nx := (lcg.f64() - 0.5) * sigma
			px[i] = px[i] + 1 + nx
			ny := (lcg.f64() - 0.5) * sigma
			py[i] = py[i] + 0.5 + ny
		}
		ox := tx + (lcg.f64()-0.5)*(sigma*0.5)
		oy := ty + (lcg.f64()-0.5)*(sigma*0.5)
		var wsum float64
		for i := range px {
			dx := px[i] - ox
			dy := py[i] - oy
			d2 := dx*dx + dy*dy
			w[i] = math.Exp(-d2 / twoSigma2)
			wsum += w[i]
		}
		if wsum > 1e-300 {
			for i := range w {
				w[i] /= wsum
			}
		} else {
			for i := range w {
				w[i] = 1 / npf
			}
		}
		var xe, ye float64
		for i := range px {
			xe += w[i] * px[i]
			ye += w[i] * py[i]
		}
		out = append(out, interp.QuantizeOutput(xe), interp.QuantizeOutput(ye))
		var ess2 float64
		for i := range w {
			ess2 += w[i] * w[i]
		}
		if 1/ess2 < npf*0.5 {
			u0 := lcg.f64() / npf
			cw := w[0]
			idx := int64(0)
			for j := int64(0); j < np; j++ {
				u := u0 + float64(j)/npf
				for u > cw && idx < np-1 {
					idx++
					cw += w[idx]
				}
				npx[j] = px[idx]
				npy[j] = py[idx]
			}
			copy(px, npx)
			copy(py, npy)
		}
	}
	return out
}
