package prog

import "repro/internal/ir"

// This file holds the small construction DSL the benchmark builders share:
// mutable variables backed by allocas (the shape clang -O0 gives C locals,
// which is what LLFI-instrumented studies analyze), counted loops, and the
// in-IR LCG used to derive benchmark data from seed arguments.

// word is the LCG multiplier/increment pair (PCG64's default stream).
const (
	lcgMul = 6364136223846793005
	lcgInc = 1442695040888963407
)

// v wraps ir.Builder with benchmark-construction helpers.
type v struct {
	b *ir.Builder
}

// variable is a single mutable i64/f64/ptr cell in memory.
type variable struct {
	ptr *ir.Instr
	ty  ir.Type
}

// newVar allocates a cell and initializes it.
func (h v) newVar(ty ir.Type, init ir.Value) variable {
	p := h.b.AllocaN(1)
	h.b.Store(init, p)
	return variable{ptr: p, ty: ty}
}

// get loads the variable.
func (h v) get(va variable) *ir.Instr { return h.b.Load(va.ty, va.ptr) }

// set stores val into the variable.
func (h v) set(va variable, val ir.Value) { h.b.Store(val, va.ptr) }

// add increments an i64 variable by delta.
func (h v) addVar(va variable, delta ir.Value) { h.set(va, h.b.Add(h.get(va), delta)) }

// fadd increments an f64 variable by delta.
func (h v) faddVar(va variable, delta ir.Value) { h.set(va, h.b.FAdd(h.get(va), delta)) }

// loop emits: for i = lo; i < hi; i++ { body(i) }. The induction variable is
// a phi; the body may create its own blocks and must leave the builder in
// the block that falls through to the loop latch. After loop returns the
// builder is positioned in the exit block.
func (h v) loop(name string, lo, hi ir.Value, body func(i ir.Value)) {
	b := h.b
	pre := b.Cur
	head := b.Block(name + ".head")
	bodyB := b.Block(name + ".body")
	exit := b.Block(name + ".exit")

	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	cond := b.ICmp(ir.OpICmpSLT, i, hi)
	b.CondBr(cond, bodyB, exit)

	b.SetBlock(bodyB)
	body(i)
	i2 := b.Add(i, ir.I64c(1))
	latch := b.Cur
	b.Br(head)

	ir.AddIncoming(i, lo, pre)
	ir.AddIncoming(i, i2, latch)
	b.SetBlock(exit)
}

// while emits: while cond() { body() }. cond is re-evaluated in the head
// block each iteration (it may emit instructions); state must flow through
// memory (variables), not SSA values. The builder resumes in the exit block.
func (h v) while(name string, cond func() ir.Value, body func()) {
	b := h.b
	head := b.Block(name + ".head")
	bodyB := b.Block(name + ".body")
	exit := b.Block(name + ".exit")
	b.Br(head)
	b.SetBlock(head)
	c := cond()
	b.CondBr(c, bodyB, exit)
	b.SetBlock(bodyB)
	body()
	b.Br(head)
	b.SetBlock(exit)
}

// ifThen emits: if cond { then() }. The then-body may create blocks; the
// builder resumes in the join block.
func (h v) ifThen(name string, cond ir.Value, then func()) {
	b := h.b
	thenB := b.Block(name + ".then")
	join := b.Block(name + ".join")
	b.CondBr(cond, thenB, join)
	b.SetBlock(thenB)
	then()
	b.Br(join)
	b.SetBlock(join)
}

// ifElse emits: if cond { then() } else { els() }.
func (h v) ifElse(name string, cond ir.Value, then, els func()) {
	b := h.b
	thenB := b.Block(name + ".then")
	elseB := b.Block(name + ".else")
	join := b.Block(name + ".join")
	b.CondBr(cond, thenB, elseB)
	b.SetBlock(thenB)
	then()
	b.Br(join)
	b.SetBlock(elseB)
	els()
	b.Br(join)
	b.SetBlock(join)
}

// lcgNext advances the LCG state variable and returns a non-negative i64
// with 31 random bits: state = state*mul + inc; value = state >> 33.
func (h v) lcgNext(state variable) *ir.Instr {
	b := h.b
	s := h.get(state)
	s2 := b.Add(b.Mul(s, ir.I64c(lcgMul)), ir.I64c(lcgInc))
	h.set(state, s2)
	return b.LShr(s2, ir.I64c(33))
}

// lcgMod returns lcgNext % m (m a positive i64 value).
func (h v) lcgMod(state variable, m ir.Value) *ir.Instr {
	return h.b.SRem(h.lcgNext(state), m)
}

// lcgF64 returns a uniform f64 in [0,1) derived from the LCG.
func (h v) lcgF64(state variable) *ir.Instr {
	b := h.b
	r := h.lcgNext(state) // 31 random bits, non-negative
	return b.FMul(b.SIToFP(r), ir.F64c(1.0/(1<<31)))
}

// minI64 emits min(a, b) via select.
func (h v) minI64(a, b ir.Value) *ir.Instr {
	lt := h.b.ICmp(ir.OpICmpSLT, a, b)
	return h.b.Select(lt, a, b)
}

// maxI64 emits max(a, b) via select.
func (h v) maxI64(a, b ir.Value) *ir.Instr {
	gt := h.b.ICmp(ir.OpICmpSGT, a, b)
	return h.b.Select(gt, a, b)
}

// idx2 computes base + (i*stride + j) for 2-D indexing.
func (h v) idx2(base ir.Value, i, stride, j ir.Value) *ir.Instr {
	off := h.b.Add(h.b.Mul(i, stride), j)
	return h.b.GEP(base, off)
}

// printI64 and printF64 append to the program output.
func (h v) printI64(x ir.Value) { h.b.Call(ir.Void, "print_i64", x) }
func (h v) printF64(x ir.Value) { h.b.Call(ir.Void, "print_f64", x) }

// goLCG mirrors the in-IR LCG for the Go oracles used in tests.
type goLCG struct{ state uint64 }

func newGoLCG(seed int64) *goLCG { return &goLCG{state: uint64(seed)} }

func (l *goLCG) next() int64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int64(l.state >> 33)
}

func (l *goLCG) mod(m int64) int64 { return l.next() % m }

func (l *goLCG) f64() float64 { return float64(l.next()) * (1.0 / (1 << 31)) }
