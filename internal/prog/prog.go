// Package prog re-implements, in the repository's LLVM-like IR, the seven
// HPC benchmark kernels the paper evaluates (Table 1): Pathfinder, Needle,
// Particlefilter (Rodinia), CoMD, HPCCG (Mantevo), XSBench (CESAR) and FFT
// (SPLASH-2), plus three extension kernels that grow the suite beyond the
// paper's set: Stencil (Parboil), a 2-D Jacobi heat sweep; SpMV (SHOC), an
// iterated banded sparse matrix-vector product; and Nbody (NAS-style), a 1-D
// oscillator chain with an all-pairs force loop — each with reduction-gated
// response passes whose coverage depends on the input regime.
// Each benchmark takes only numeric scalar inputs (§3.1.2 — the
// paper selects benchmarks this way for input generation), carries a default
// reference input standing in for the benchmark suite's provided input, and
// generates its internal data (grids, sequences, particles, lattices)
// deterministically from a seed argument with an in-IR LCG, so program
// behaviour is a pure function of the numeric input vector.
//
// Workload sizes are scaled down from the paper's multi-billion-instruction
// runs so that thousand-trial fault-injection campaigns finish in seconds;
// the input-dependent control-flow and data-flow structure that PEPPA-X
// exploits is preserved.
package prog

import (
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/xrand"
)

// ArgKind distinguishes integer and floating program arguments.
type ArgKind uint8

// Argument kinds.
const (
	ArgInt ArgKind = iota
	ArgFloat
)

// ArgSpec describes one scalar input argument: its generation range for
// random inputs (the paper's random input study, §3.1.2), the narrow range
// the small-FI-input fuzzer starts from (§4.2.1), and the benchmark's
// default reference value (the "default reference input", §3.2.1).
type ArgSpec struct {
	Name string
	Kind ArgKind
	// Min and Max bound the full input space (inclusive).
	Min, Max float64
	// SmallMin and SmallMax bound the initial small-workload fuzzing range.
	SmallMin, SmallMax float64
	// Ref is the argument's value in the default reference input.
	Ref float64
}

// Clamp forces v into the argument's valid range, rounding integers.
func (a ArgSpec) Clamp(v float64) float64 {
	if a.Kind == ArgInt {
		v = math.Round(v)
	}
	if v < a.Min {
		v = a.Min
	}
	if v > a.Max {
		v = a.Max
	}
	return v
}

// Benchmark bundles a compiled program with its input specification.
type Benchmark struct {
	Name        string
	Suite       string
	Description string
	Module      *ir.Module
	Prog        *interp.Program
	Args        []ArgSpec

	// MaxDyn is the per-run dynamic-instruction validity bound: inputs whose
	// golden run exceeds it are rejected, mirroring the paper's 40-billion
	// dynamic-instruction cap on generated inputs (§3.1.2), scaled down.
	MaxDyn int64
}

// Encode converts an input vector (one float64 per argument, integers
// pre-rounded) into interpreter argument slots.
func (b *Benchmark) Encode(input []float64) []uint64 {
	return b.EncodeInto(make([]uint64, 0, len(input)), input)
}

// EncodeInto appends the encoded argument slots to dst and returns the
// extended slice — the allocation-free form for evaluation loops that reuse
// one buffer across candidates (pass dst[:0]).
func (b *Benchmark) EncodeInto(dst []uint64, input []float64) []uint64 {
	if len(input) != len(b.Args) {
		panic(fmt.Sprintf("prog: %s takes %d args, got %d", b.Name, len(b.Args), len(input)))
	}
	for i, v := range input {
		if b.Args[i].Kind == ArgInt {
			dst = append(dst, uint64(int64(math.Round(v))))
		} else {
			dst = append(dst, math.Float64bits(v))
		}
	}
	return dst
}

// RefInput returns the default reference input vector.
func (b *Benchmark) RefInput() []float64 {
	in := make([]float64, len(b.Args))
	for i, a := range b.Args {
		in[i] = a.Ref
	}
	return in
}

// RandomInput draws a uniform input from the full input space.
func (b *Benchmark) RandomInput(rng *xrand.RNG) []float64 {
	in := make([]float64, len(b.Args))
	for i, a := range b.Args {
		in[i] = a.Clamp(rng.Range(a.Min, a.Max))
	}
	return in
}

// RandomInputScaled draws an input where each argument is sampled from the
// small range linearly widened toward the full range by frac in [0,1] —
// the expanding-range procedure of the small-FI-input fuzzer (§4.2.1).
func (b *Benchmark) RandomInputScaled(rng *xrand.RNG, frac float64) []float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	in := make([]float64, len(b.Args))
	for i, a := range b.Args {
		lo := a.SmallMin + (a.Min-a.SmallMin)*frac
		hi := a.SmallMax + (a.Max-a.SmallMax)*frac
		in[i] = a.Clamp(rng.Range(lo, hi))
	}
	return in
}

// ClampInput clamps every argument of input in place and returns it.
func (b *Benchmark) ClampInput(input []float64) []float64 {
	for i := range input {
		input[i] = b.Args[i].Clamp(input[i])
	}
	return input
}

// builderFunc constructs one benchmark module.
type builderFunc func() (*ir.Module, []ArgSpec, string, string, int64)

var builders = map[string]builderFunc{}

var benchOrder = []string{"pathfinder", "needle", "particlefilter", "comd", "hpccg", "xsbench", "fft", "stencil", "spmv", "nbody"}

func register(name string, fn builderFunc) { builders[name] = fn }

// Build constructs and compiles the named benchmark. It panics on unknown
// names and on internal build errors (which indicate a bug, not bad input).
func Build(name string) *Benchmark {
	fn, ok := builders[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown benchmark %q", name))
	}
	mod, args, suite, desc, maxDyn := fn()
	p, err := interp.Compile(mod)
	if err != nil {
		panic(fmt.Sprintf("prog: %s failed to compile: %v", name, err))
	}
	return &Benchmark{
		Name: name, Suite: suite, Description: desc,
		Module: mod, Prog: p, Args: args, MaxDyn: maxDyn,
	}
}

// Names returns the benchmark names in the paper's Table 1 order.
func Names() []string { return append([]string(nil), benchOrder...) }

// All builds every benchmark in Table 1 order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(benchOrder))
	for _, n := range benchOrder {
		out = append(out, Build(n))
	}
	return out
}
