package prog

import "repro/internal/ir"

// XSBench (CESAR): the macroscopic-cross-section lookup kernel of a Monte
// Carlo neutronics app. Each lookup samples an energy, binary-searches a
// sorted unionized energy grid (compare-heavy, strongly masking), linearly
// interpolates five reaction-channel cross-sections per nuclide, and
// accumulates density-weighted macroscopic cross-sections. Index faults
// either mask entirely (same grid cell) or disappear into the five
// accumulators — the paper finds XSBench's default input shows only ~1 %
// SDC while its SDC-bound input reaches ~38 %.
//
// Inputs: lookups, gridpoints, nuclides, seed, enrichment (mix weight of
// even-indexed nuclides). Output: the five macroscopic XS accumulators.

func init() { register("xsbench", buildXSBench) }

const xsChannels = 5

func xsbenchArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "lookups", Kind: ArgInt, Min: 50, Max: 1000, SmallMin: 50, SmallMax: 100, Ref: 300},
		{Name: "gridpoints", Kind: ArgInt, Min: 20, Max: 300, SmallMin: 20, SmallMax: 40, Ref: 100},
		{Name: "nuclides", Kind: ArgInt, Min: 2, Max: 6, SmallMin: 2, SmallMax: 3, Ref: 4},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 19},
		{Name: "enrichment", Kind: ArgFloat, Min: 0.01, Max: 0.99, SmallMin: 0.2, SmallMax: 0.4, Ref: 0.12},
	}
}

func buildXSBench() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("xsbench")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "lookups", Ty: ir.I64},
		&ir.Param{Name: "gridpoints", Ty: ir.I64},
		&ir.Param{Name: "nuclides", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
		&ir.Param{Name: "enrichment", Ty: ir.F64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	lookups := b.Param(0)
	gp := b.Param(1)
	nuc := b.Param(2)
	seed := b.Param(3)
	enrich := b.Param(4)

	state := h.newVar(ir.I64, seed)
	egrid := b.Alloca(gp)
	xs := b.Alloca(b.Mul(b.Mul(nuc, gp), ir.I64c(xsChannels)))
	macro := b.AllocaN(xsChannels)   // per-lookup macro XS, rebuilt each lookup
	winners := b.AllocaN(xsChannels) // histogram of per-lookup argmax channels

	// Sorted energy grid via positive increments.
	e := h.newVar(ir.F64, ir.F64c(0))
	h.loop("grid", ir.I64c(0), gp, func(g ir.Value) {
		h.set(e, b.FAdd(h.get(e), b.FAdd(ir.F64c(0.01), h.lcgF64(state))))
		b.Store(h.get(e), b.GEP(egrid, g))
	})

	// Cross-section table, nuclide-major.
	chans := ir.I64c(xsChannels)
	xsIdx := func(n, g, c ir.Value) *ir.Instr {
		return b.GEP(xs, b.Add(b.Mul(b.Add(b.Mul(n, gp), g), chans), c))
	}
	h.loop("tbl.n", ir.I64c(0), nuc, func(n ir.Value) {
		h.loop("tbl.g", ir.I64c(0), gp, func(g ir.Value) {
			h.loop("tbl.c", ir.I64c(0), chans, func(c ir.Value) {
				b.Store(h.lcgF64(state), xsIdx(n, g, c))
			})
		})
	})

	// Zero the winner histogram.
	h.loop("zwin", ir.I64c(0), chans, func(c ir.Value) {
		b.Store(ir.I64c(0), b.GEP(winners, c))
	})

	e0 := b.Load(ir.F64, b.GEP(egrid, ir.I64c(0)))
	eTop := b.Load(ir.F64, b.GEP(egrid, b.Sub(gp, ir.I64c(1))))
	span := b.FSub(eTop, e0)
	gpM2 := b.Sub(gp, ir.I64c(2))
	oneMinus := b.FSub(ir.F64c(1), enrich)

	h.loop("lookup", ir.I64c(0), lookups, func(l ir.Value) {
		_ = l
		energy := b.FAdd(e0, b.FMul(h.lcgF64(state), span))
		// Binary search: largest g with egrid[g] <= energy.
		lo := h.newVar(ir.I64, ir.I64c(0))
		hi := h.newVar(ir.I64, b.Sub(gp, ir.I64c(1)))
		h.while("bs", func() ir.Value {
			return b.ICmp(ir.OpICmpSGT, b.Sub(h.get(hi), h.get(lo)), ir.I64c(1))
		}, func() {
			mid := b.SDiv(b.Add(h.get(lo), h.get(hi)), ir.I64c(2))
			below := b.FCmp(ir.OpFCmpOLE, b.Load(ir.F64, b.GEP(egrid, mid)), energy)
			h.ifElse("bs.pick", below,
				func() { h.set(lo, mid) },
				func() { h.set(hi, mid) })
		})
		g := h.minI64(h.get(lo), gpM2)
		eg := b.Load(ir.F64, b.GEP(egrid, g))
		eg1 := b.Load(ir.F64, b.GEP(egrid, b.Add(g, ir.I64c(1))))
		frac := b.FDiv(b.FSub(energy, eg), b.FSub(eg1, eg))
		fracC := b.FSub(ir.F64c(1), frac)

		// Per-lookup macro XS across nuclides, then record which reaction
		// channel wins — real XSBench's verification reduces each lookup to
		// the index of its maximum cross-section, so most value corruption
		// masks unless it flips an argmax.
		h.loop("zmac", ir.I64c(0), chans, func(c ir.Value) {
			b.Store(ir.F64c(0), b.GEP(macro, c))
		})
		h.loop("mix", ir.I64c(0), nuc, func(n ir.Value) {
			even := b.ICmp(ir.OpICmpEQ, b.And(n, ir.I64c(1)), ir.I64c(0))
			den := b.Select(even, enrich, oneMinus)
			h.loop("chan", ir.I64c(0), chans, func(c ir.Value) {
				lov := b.Load(ir.F64, xsIdx(n, g, c))
				hiv := b.Load(ir.F64, xsIdx(n, b.Add(g, ir.I64c(1)), c))
				val := b.FAdd(b.FMul(lov, fracC), b.FMul(hiv, frac))
				mp := b.GEP(macro, c)
				b.Store(b.FAdd(b.Load(ir.F64, mp), b.FMul(den, val)), mp)
			})
		})
		bestC := h.newVar(ir.I64, ir.I64c(0))
		bestV := h.newVar(ir.F64, b.Load(ir.F64, b.GEP(macro, ir.I64c(0))))
		h.loop("argmax", ir.I64c(1), chans, func(c ir.Value) {
			val := b.Load(ir.F64, b.GEP(macro, c))
			h.ifThen("better", b.FCmp(ir.OpFCmpOGT, val, h.get(bestV)), func() {
				h.set(bestV, val)
				h.set(bestC, c)
			})
		})
		wp := b.GEP(winners, h.get(bestC))
		b.Store(b.Add(b.Load(ir.I64, wp), ir.I64c(1)), wp)
	})

	h.loop("out", ir.I64c(0), chans, func(c ir.Value) {
		h.printI64(b.Load(ir.I64, b.GEP(winners, c)))
	})
	b.Ret(nil)

	return m, xsbenchArgs(), "CESAR",
		"Monte Carlo neutronics macroscopic cross-section lookup kernel", 2500000
}

// oracleXSBench mirrors the IR program in Go.
func oracleXSBench(lookups, gridpoints, nuclides, seed int64, enrichment float64) []float64 {
	lcg := newGoLCG(seed)
	egrid := make([]float64, gridpoints)
	e := 0.0
	for g := range egrid {
		e = e + (0.01 + lcg.f64())
		egrid[g] = e
	}
	xs := make([]float64, nuclides*gridpoints*xsChannels)
	for i := range xs {
		xs[i] = lcg.f64()
	}
	macro := make([]float64, xsChannels)
	winners := make([]float64, xsChannels)
	e0 := egrid[0]
	span := egrid[gridpoints-1] - e0
	oneMinus := 1 - enrichment
	for l := int64(0); l < lookups; l++ {
		energy := e0 + lcg.f64()*span
		lo, hi := int64(0), gridpoints-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if egrid[mid] <= energy {
				lo = mid
			} else {
				hi = mid
			}
		}
		g := lo
		if g > gridpoints-2 {
			g = gridpoints - 2
		}
		frac := (energy - egrid[g]) / (egrid[g+1] - egrid[g])
		fracC := 1 - frac
		for c := range macro {
			macro[c] = 0
		}
		for n := int64(0); n < nuclides; n++ {
			den := oneMinus
			if n&1 == 0 {
				den = enrichment
			}
			for c := int64(0); c < xsChannels; c++ {
				lov := xs[(n*gridpoints+g)*xsChannels+c]
				hiv := xs[(n*gridpoints+g+1)*xsChannels+c]
				val := lov*fracC + hiv*frac
				macro[c] += den * val
			}
		}
		bestC, bestV := 0, macro[0]
		for c := 1; c < xsChannels; c++ {
			if macro[c] > bestV {
				bestV = macro[c]
				bestC = c
			}
		}
		winners[bestC]++
	}
	return winners
}
