package prog

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/xrand"
)

// runOutputs executes a benchmark on an input and returns the printed
// values as int64s (for integer-output programs).
func runInts(t testing.TB, b *Benchmark, input []float64) []int64 {
	t.Helper()
	r := interp.Run(b.Prog, b.Encode(input), interp.Options{MaxDyn: b.MaxDyn})
	if r.Trap != nil {
		t.Fatalf("%s trapped on %v: %v", b.Name, input, r.Trap)
	}
	if r.BudgetExceeded {
		t.Fatalf("%s exceeded budget on %v", b.Name, input)
	}
	out := make([]int64, len(r.Output))
	for i, o := range r.Output {
		out[i] = o.Int()
	}
	return out
}

func runFloats(t testing.TB, b *Benchmark, input []float64) []float64 {
	t.Helper()
	r := interp.Run(b.Prog, b.Encode(input), interp.Options{MaxDyn: b.MaxDyn})
	if r.Trap != nil {
		t.Fatalf("%s trapped on %v: %v", b.Name, input, r.Trap)
	}
	if r.BudgetExceeded {
		t.Fatalf("%s exceeded budget on %v", b.Name, input)
	}
	out := make([]float64, len(r.Output))
	for i, o := range r.Output {
		out[i] = o.Float()
	}
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // exact: oracle mirrors operation order
			return false
		}
	}
	return true
}

func TestPathfinderMatchesOracle(t *testing.T) {
	b := Build("pathfinder")
	rng := xrand.New(1)
	// Reference input plus random inputs.
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := runInts(t, b, in)
		want := oraclePathfinder(int64(in[0]), int64(in[1]), int64(in[2]), int64(in[3]))
		if !eqInts(got, want) {
			t.Fatalf("input %v: got %v want %v", in, got, want)
		}
	}
}

func TestPathfinderOutputShape(t *testing.T) {
	b := Build("pathfinder")
	out := runInts(t, b, []float64{5, 7, 3, 10})
	if len(out) != 1 {
		t.Fatalf("output length %d, want 1 (min path cost)", len(out))
	}
	// A 5-row path sums 5 non-negative wall costs below amp each.
	if out[0] < 0 || out[0] >= 5*10 {
		t.Fatalf("min path cost %d out of plausible range", out[0])
	}
}
