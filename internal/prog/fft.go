package prog

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// FFT (SPLASH-2): an iterative radix-2 Cooley-Tukey FFT over LCG-generated
// complex data, with an explicit bit-reversal permutation (bit-manipulation
// instructions) and per-butterfly twiddle factors via sin/cos. Every data
// value mixes into every output bin, so corruptions rarely mask: its SDC
// probability is high across the input space (a "dense" benchmark in the
// paper's Figure 6 terms, like Hpccg).
//
// Inputs: log2n (transform size), seed, scale (data amplitude). Output: the
// first four spectrum bins (re, im interleaved) and the total spectral
// energy.

func init() { register("fft", buildFFT) }

func fftArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "log2n", Kind: ArgInt, Min: 3, Max: 8, SmallMin: 3, SmallMax: 4, Ref: 6},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 11},
		{Name: "scale", Kind: ArgFloat, Min: 0.1, Max: 100, SmallMin: 0.5, SmallMax: 2, Ref: 1.0},
	}
}

func buildFFT() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("fft")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "log2n", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
		&ir.Param{Name: "scale", Ty: ir.F64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	log2n := b.Param(0)
	seed := b.Param(1)
	scale := b.Param(2)

	n := b.Shl(ir.I64c(1), log2n)
	state := h.newVar(ir.I64, seed)
	re := b.Alloca(n)
	im := b.Alloca(n)

	// Data: centred uniform values scaled by the amplitude input.
	h.loop("gen", ir.I64c(0), n, func(i ir.Value) {
		rv := b.FMul(b.FSub(b.FMul(h.lcgF64(state), ir.F64c(2)), ir.F64c(1)), scale)
		b.Store(rv, b.GEP(re, i))
		iv := b.FMul(b.FSub(b.FMul(h.lcgF64(state), ir.F64c(2)), ir.F64c(1)), scale)
		b.Store(iv, b.GEP(im, i))
	})

	// Bit-reversal permutation: for each i, compute rev(i) and swap once.
	h.loop("rev", ir.I64c(0), n, func(i ir.Value) {
		rev := h.newVar(ir.I64, ir.I64c(0))
		h.loop("rev.bit", ir.I64c(0), log2n, func(bit ir.Value) {
			bitVal := b.And(b.LShr(i, bit), ir.I64c(1))
			h.set(rev, b.Or(b.Shl(h.get(rev), ir.I64c(1)), bitVal))
		})
		r := h.get(rev)
		h.ifThen("rev.swap", b.ICmp(ir.OpICmpSLT, i, r), func() {
			pi := b.GEP(re, i)
			pr := b.GEP(re, r)
			t1 := b.Load(ir.F64, pi)
			b.Store(b.Load(ir.F64, pr), pi)
			b.Store(t1, pr)
			qi := b.GEP(im, i)
			qr := b.GEP(im, r)
			t2 := b.Load(ir.F64, qi)
			b.Store(b.Load(ir.F64, qr), qi)
			b.Store(t2, qr)
		})
	})

	// Iterative butterflies. For stage s (len = 2^s): for each block and
	// each butterfly j, twiddle angle = -2*pi*j/len.
	h.loop("stage", ir.I64c(1), b.Add(log2n, ir.I64c(1)), func(s ir.Value) {
		lenV := b.Shl(ir.I64c(1), s)
		half := b.AShr(lenV, ir.I64c(1))
		angStep := b.FDiv(ir.F64c(-2*math.Pi), b.SIToFP(lenV))
		blocks := b.SDiv(n, lenV)
		h.loop("blk", ir.I64c(0), blocks, func(blk ir.Value) {
			base := b.Mul(blk, lenV)
			h.loop("bf", ir.I64c(0), half, func(j ir.Value) {
				ang := b.FMul(angStep, b.SIToFP(j))
				wr := b.Call(ir.F64, "cos", ang)
				wi := b.Call(ir.F64, "sin", ang)
				idx1 := b.Add(base, j)
				idx2 := b.Add(idx1, half)
				p1r := b.GEP(re, idx1)
				p1i := b.GEP(im, idx1)
				p2r := b.GEP(re, idx2)
				p2i := b.GEP(im, idx2)
				ar := b.Load(ir.F64, p1r)
				ai := b.Load(ir.F64, p1i)
				br := b.Load(ir.F64, p2r)
				bi := b.Load(ir.F64, p2i)
				// t = w * b
				tr := b.FSub(b.FMul(wr, br), b.FMul(wi, bi))
				ti := b.FAdd(b.FMul(wr, bi), b.FMul(wi, br))
				b.Store(b.FAdd(ar, tr), p1r)
				b.Store(b.FAdd(ai, ti), p1i)
				b.Store(b.FSub(ar, tr), p2r)
				b.Store(b.FSub(ai, ti), p2i)
			})
		})
	})

	// Output: first four bins and total spectral energy.
	h.loop("out", ir.I64c(0), h.minI64(n, ir.I64c(4)), func(i ir.Value) {
		h.printF64(b.Load(ir.F64, b.GEP(re, i)))
		h.printF64(b.Load(ir.F64, b.GEP(im, i)))
	})
	energy := h.newVar(ir.F64, ir.F64c(0))
	h.loop("energy", ir.I64c(0), n, func(i ir.Value) {
		rv := b.Load(ir.F64, b.GEP(re, i))
		iv := b.Load(ir.F64, b.GEP(im, i))
		h.faddVar(energy, b.FAdd(b.FMul(rv, rv), b.FMul(iv, iv)))
	})
	h.printF64(h.get(energy))
	b.Ret(nil)

	return m, fftArgs(), "SPLASH-2",
		"1-D radix-2 fast Fourier transform with bit-reversal permutation", 600000
}

// oracleFFT mirrors the IR program in Go with identical operation order, so
// float outputs match bit-exactly.
func oracleFFT(log2n, seed int64, scale float64) []float64 {
	n := int64(1) << log2n
	lcg := newGoLCG(seed)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := int64(0); i < n; i++ {
		re[i] = (lcg.f64()*2 - 1) * scale
		im[i] = (lcg.f64()*2 - 1) * scale
	}
	for i := int64(0); i < n; i++ {
		var rev int64
		for bit := int64(0); bit < log2n; bit++ {
			rev = rev<<1 | (i>>bit)&1
		}
		if i < rev {
			re[i], re[rev] = re[rev], re[i]
			im[i], im[rev] = im[rev], im[i]
		}
	}
	for s := int64(1); s <= log2n; s++ {
		length := int64(1) << s
		half := length >> 1
		angStep := -2 * math.Pi / float64(length)
		blocks := n / length
		for blk := int64(0); blk < blocks; blk++ {
			base := blk * length
			for j := int64(0); j < half; j++ {
				ang := angStep * float64(j)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i1, i2 := base+j, base+j+half
				ar, ai := re[i1], im[i1]
				br, bi := re[i2], im[i2]
				tr := wr*br - wi*bi
				ti := wr*bi + wi*br
				re[i1], im[i1] = ar+tr, ai+ti
				re[i2], im[i2] = ar-tr, ai-ti
			}
		}
	}
	var out []float64
	lim := int64(4)
	if n < lim {
		lim = n
	}
	for i := int64(0); i < lim; i++ {
		out = append(out, interp.QuantizeOutput(re[i]), interp.QuantizeOutput(im[i]))
	}
	var energy float64
	for i := int64(0); i < n; i++ {
		energy += re[i]*re[i] + im[i]*im[i]
	}
	return append(out, interp.QuantizeOutput(energy))
}
