package prog

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// Stencil (Parboil): a 2-D five-point Jacobi heat-diffusion sweep with a
// per-step reduction — the data-parallel kernel shape of iterative PDE
// solvers, where every interior cell is updated independently from the
// previous grid. A hot-spot source injects heat at the grid center each
// step; the total-heat reduction then gates a staircase of thermal-response
// passes (radiative loss, peak tracking, renormalization) whose thresholds
// only high-energy workloads cross, so the kernel's code coverage depends on
// the input regime (the property the rare-branch-guided fuzzer exploits).
//
// Inputs: n (grid edge), steps, alpha (diffusion coefficient, stable for
// alpha <= 0.25), source (hot-spot injection per step), seed. Output: total
// heat per step (plus the grid peak on steps crossing the second threshold),
// then a final grid checksum.

func init() { register("stencil", buildStencil) }

// Total-heat thresholds of the staircase passes. The reference input and the
// small-fuzzing ranges stay below stencilT1, so step-① coverage parity with
// the reference is immediate; crossing all three takes a jointly hot
// steps × source × n regime that random input sampling rarely reaches.
const (
	stencilT1 = 90
	stencilT2 = 380
	stencilT3 = 820
)

func stencilArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "n", Kind: ArgInt, Min: 4, Max: 12, SmallMin: 4, SmallMax: 6, Ref: 8},
		{Name: "steps", Kind: ArgInt, Min: 1, Max: 12, SmallMin: 1, SmallMax: 3, Ref: 3},
		{Name: "alpha", Kind: ArgFloat, Min: 0.05, Max: 0.25, SmallMin: 0.05, SmallMax: 0.1, Ref: 0.1},
		{Name: "source", Kind: ArgFloat, Min: 1, Max: 100, SmallMin: 1, SmallMax: 8, Ref: 10},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 11},
	}
}

func buildStencil() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("stencil")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "n", Ty: ir.I64},
		&ir.Param{Name: "steps", Ty: ir.I64},
		&ir.Param{Name: "alpha", Ty: ir.F64},
		&ir.Param{Name: "source", Ty: ir.F64},
		&ir.Param{Name: "seed", Ty: ir.I64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	n := b.Param(0)
	steps := b.Param(1)
	alpha := b.Param(2)
	source := b.Param(3)
	seed := b.Param(4)

	cells := b.Mul(n, n)
	u := b.Alloca(cells)
	un := b.Alloca(cells)
	state := h.newVar(ir.I64, seed)

	// Initial temperatures in [0,1) from the seed.
	h.loop("init", ir.I64c(0), cells, func(i ir.Value) {
		b.Store(h.lcgF64(state), b.GEP(u, i))
	})

	half := b.SDiv(n, ir.I64c(2))
	center := b.Add(b.Mul(half, n), half)
	h.loop("step", ir.I64c(0), steps, func(s ir.Value) {
		_ = s
		// Inject the hot-spot source at the grid center.
		cp := b.GEP(u, center)
		b.Store(b.FAdd(b.Load(ir.F64, cp), source), cp)
		// Dirichlet boundary: copy the grid, then overwrite the interior.
		h.loop("copy", ir.I64c(0), cells, func(i ir.Value) {
			b.Store(b.Load(ir.F64, b.GEP(u, i)), b.GEP(un, i))
		})
		nm1 := b.Sub(n, ir.I64c(1))
		h.loop("sweep.i", ir.I64c(1), nm1, func(i ir.Value) {
			h.loop("sweep.j", ir.I64c(1), nm1, func(j ir.Value) {
				c := b.Load(ir.F64, h.idx2(u, i, n, j))
				up := b.Load(ir.F64, h.idx2(u, b.Sub(i, ir.I64c(1)), n, j))
				dn := b.Load(ir.F64, h.idx2(u, b.Add(i, ir.I64c(1)), n, j))
				lf := b.Load(ir.F64, h.idx2(u, i, n, b.Sub(j, ir.I64c(1))))
				rt := b.Load(ir.F64, h.idx2(u, i, n, b.Add(j, ir.I64c(1))))
				nb := b.FAdd(b.FAdd(b.FAdd(up, dn), lf), rt)
				lap := b.FSub(nb, b.FMul(ir.F64c(4), c))
				b.Store(b.FAdd(c, b.FMul(alpha, lap)), h.idx2(un, i, n, j))
			})
		})
		// Write back and reduce total heat.
		heat := h.newVar(ir.F64, ir.F64c(0))
		h.loop("reduce", ir.I64c(0), cells, func(i ir.Value) {
			val := b.Load(ir.F64, b.GEP(un, i))
			b.Store(val, b.GEP(u, i))
			h.faddVar(heat, val)
		})
		hv := h.get(heat)
		h.printF64(hv)
		// Thermal-response staircase: hot grids radiate, hotter grids track
		// their peak, the hottest are renormalized back to the top threshold.
		h.ifThen("radiate", b.FCmp(ir.OpFCmpOGT, hv, ir.F64c(stencilT1)), func() {
			h.loop("radiate.d", ir.I64c(0), cells, func(i ir.Value) {
				p := b.GEP(u, i)
				b.Store(b.FMul(b.Load(ir.F64, p), ir.F64c(0.995)), p)
			})
			h.ifThen("peak", b.FCmp(ir.OpFCmpOGT, hv, ir.F64c(stencilT2)), func() {
				peak := h.newVar(ir.F64, ir.F64c(0))
				h.loop("peak.m", ir.I64c(0), cells, func(i ir.Value) {
					val := b.Load(ir.F64, b.GEP(u, i))
					hotter := b.FCmp(ir.OpFCmpOGT, val, h.get(peak))
					h.set(peak, b.Select(hotter, val, h.get(peak)))
				})
				h.printF64(h.get(peak))
				h.ifThen("renorm", b.FCmp(ir.OpFCmpOGT, hv, ir.F64c(stencilT3)), func() {
					scale := b.FDiv(ir.F64c(stencilT3), hv)
					h.loop("renorm.s", ir.I64c(0), cells, func(i ir.Value) {
						p := b.GEP(u, i)
						b.Store(b.FMul(b.Load(ir.F64, p), scale), p)
					})
				})
			})
		})
	})

	// Final grid checksum.
	cs := h.newVar(ir.F64, ir.F64c(0))
	h.loop("final", ir.I64c(0), cells, func(i ir.Value) {
		h.faddVar(cs, b.Load(ir.F64, b.GEP(u, i)))
	})
	h.printF64(h.get(cs))
	b.Ret(nil)

	return m, stencilArgs(), "Parboil",
		"2-D Jacobi heat-diffusion sweep with hot-spot source and reduction-gated response passes", 300000
}

// oracleStencil mirrors the IR program in Go with identical operation order.
func oracleStencil(n, steps int64, alpha, source float64, seed int64) []float64 {
	cells := n * n
	lcg := newGoLCG(seed)
	u := make([]float64, cells)
	un := make([]float64, cells)
	for i := int64(0); i < cells; i++ {
		u[i] = lcg.f64()
	}
	center := (n/2)*n + n/2
	var out []float64
	for s := int64(0); s < steps; s++ {
		u[center] += source
		copy(un, u)
		for i := int64(1); i < n-1; i++ {
			for j := int64(1); j < n-1; j++ {
				c := u[i*n+j]
				nb := u[(i-1)*n+j] + u[(i+1)*n+j] + u[i*n+j-1] + u[i*n+j+1]
				un[i*n+j] = c + alpha*(nb-4*c)
			}
		}
		var heat float64
		for i := int64(0); i < cells; i++ {
			u[i] = un[i]
			heat += u[i]
		}
		out = append(out, interp.QuantizeOutput(heat))
		if heat > stencilT1 {
			for i := int64(0); i < cells; i++ {
				u[i] *= 0.995
			}
			if heat > stencilT2 {
				var peak float64
				for i := int64(0); i < cells; i++ {
					if u[i] > peak {
						peak = u[i]
					}
				}
				out = append(out, interp.QuantizeOutput(peak))
				if heat > stencilT3 {
					scale := stencilT3 / heat
					for i := int64(0); i < cells; i++ {
						u[i] *= scale
					}
				}
			}
		}
	}
	var cs float64
	for i := int64(0); i < cells; i++ {
		cs += u[i]
	}
	return append(out, interp.QuantizeOutput(cs))
}
