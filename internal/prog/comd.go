package prog

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// CoMD (Mantevo): a miniature classical molecular-dynamics kernel. Atoms on
// a jittered cubic lattice interact through a cutoff Lennard-Jones
// potential; velocity-Verlet-style integration advances positions. The
// cutoff comparison in the O(N²) force loop masks faults in far-pair
// arithmetic, while corrupted positions/velocities persist across steps —
// the paper measures CoMD's SDC probability in a comparatively narrow
// 9.55-12.58 % band across inputs.
//
// Inputs: nx (atoms per lattice edge; N = nx³), steps, dt, cutoff, seed.
// Output: potential energy per step, then kinetic energy and a position
// checksum.

func init() { register("comd", buildCoMD) }

func comdArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "nx", Kind: ArgInt, Min: 2, Max: 3, SmallMin: 2, SmallMax: 2, Ref: 3},
		{Name: "steps", Kind: ArgInt, Min: 1, Max: 8, SmallMin: 1, SmallMax: 2, Ref: 2},
		{Name: "dt", Kind: ArgFloat, Min: 0.001, Max: 0.02, SmallMin: 0.004, SmallMax: 0.006, Ref: 0.004},
		{Name: "cutoff", Kind: ArgFloat, Min: 1.2, Max: 2.5, SmallMin: 1.5, SmallMax: 1.9, Ref: 1.6},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 13},
	}
}

func buildCoMD() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("comd")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "nx", Ty: ir.I64},
		&ir.Param{Name: "steps", Ty: ir.I64},
		&ir.Param{Name: "dt", Ty: ir.F64},
		&ir.Param{Name: "cutoff", Ty: ir.F64},
		&ir.Param{Name: "seed", Ty: ir.I64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	nx := b.Param(0)
	steps := b.Param(1)
	dt := b.Param(2)
	cutoff := b.Param(3)
	seed := b.Param(4)

	natoms := b.Mul(b.Mul(nx, nx), nx)
	state := h.newVar(ir.I64, seed)

	x := b.Alloca(natoms)
	y := b.Alloca(natoms)
	z := b.Alloca(natoms)
	vx := b.Alloca(natoms)
	vy := b.Alloca(natoms)
	vz := b.Alloca(natoms)
	fx := b.Alloca(natoms)
	fy := b.Alloca(natoms)
	fz := b.Alloca(natoms)

	// Lattice with spacing 1.2 and small positional jitter; small random
	// initial velocities.
	spacing := ir.F64c(1.2)
	idx := h.newVar(ir.I64, ir.I64c(0))
	h.loop("lat.i", ir.I64c(0), nx, func(i ir.Value) {
		h.loop("lat.j", ir.I64c(0), nx, func(j ir.Value) {
			h.loop("lat.k", ir.I64c(0), nx, func(k ir.Value) {
				a := h.get(idx)
				jit := func() *ir.Instr {
					return b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), ir.F64c(0.1))
				}
				b.Store(b.FAdd(b.FMul(b.SIToFP(i), spacing), jit()), b.GEP(x, a))
				b.Store(b.FAdd(b.FMul(b.SIToFP(j), spacing), jit()), b.GEP(y, a))
				b.Store(b.FAdd(b.FMul(b.SIToFP(k), spacing), jit()), b.GEP(z, a))
				vel := func() *ir.Instr {
					return b.FMul(b.FSub(h.lcgF64(state), ir.F64c(0.5)), ir.F64c(0.2))
				}
				b.Store(vel(), b.GEP(vx, a))
				b.Store(vel(), b.GEP(vy, a))
				b.Store(vel(), b.GEP(vz, a))
				h.addVar(idx, ir.I64c(1))
			})
		})
	})

	cutoff2 := b.FMul(cutoff, cutoff)
	h.loop("step", ir.I64c(0), steps, func(s ir.Value) {
		_ = s
		// Zero forces.
		h.loop("zero", ir.I64c(0), natoms, func(i ir.Value) {
			b.Store(ir.F64c(0), b.GEP(fx, i))
			b.Store(ir.F64c(0), b.GEP(fy, i))
			b.Store(ir.F64c(0), b.GEP(fz, i))
		})
		pe := h.newVar(ir.F64, ir.F64c(0))
		// Pairwise Lennard-Jones with cutoff.
		h.loop("force.i", ir.I64c(0), natoms, func(i ir.Value) {
			h.loop("force.j", b.Add(i, ir.I64c(1)), natoms, func(j ir.Value) {
				dx := b.FSub(b.Load(ir.F64, b.GEP(x, i)), b.Load(ir.F64, b.GEP(x, j)))
				dy := b.FSub(b.Load(ir.F64, b.GEP(y, i)), b.Load(ir.F64, b.GEP(y, j)))
				dz := b.FSub(b.Load(ir.F64, b.GEP(z, i)), b.Load(ir.F64, b.GEP(z, j)))
				r2 := b.FAdd(b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)), b.FMul(dz, dz))
				inRange := b.FCmp(ir.OpFCmpOLT, r2, cutoff2)
				nonZero := b.FCmp(ir.OpFCmpOGT, r2, ir.F64c(1e-12))
				h.ifThen("lj", b.And(inRange, nonZero), func() {
					r2i := b.FDiv(ir.F64c(1), r2)
					r6i := b.FMul(b.FMul(r2i, r2i), r2i)
					// force scalar: 24 r6i (2 r6i - 1) r2i
					ff := b.FMul(b.FMul(b.FMul(ir.F64c(24), r6i),
						b.FSub(b.FMul(ir.F64c(2), r6i), ir.F64c(1))), r2i)
					for _, axis := range []struct {
						d ir.Value
						f *ir.Instr
					}{{dx, fx}, {dy, fy}, {dz, fz}} {
						fi := b.GEP(axis.f, i)
						fj := b.GEP(axis.f, j)
						fd := b.FMul(ff, axis.d)
						b.Store(b.FAdd(b.Load(ir.F64, fi), fd), fi)
						b.Store(b.FSub(b.Load(ir.F64, fj), fd), fj)
					}
					h.faddVar(pe, b.FMul(b.FMul(ir.F64c(4), r6i), b.FSub(r6i, ir.F64c(1))))
				})
			})
		})
		h.printF64(h.get(pe))
		// Hot configurations (net-repulsive potential: atoms inside the LJ
		// core, which depends on cutoff/seed) trigger a periodic-boundary
		// wrap of all coordinates — an input-dependent code region whose
		// execution shifts the program's dynamic footprint.
		boxL := b.FMul(b.SIToFP(nx), spacing)
		h.ifThen("wrap", b.FCmp(ir.OpFCmpOGT, h.get(pe), ir.F64c(0)), func() {
			h.loop("wrap.i", ir.I64c(0), natoms, func(i ir.Value) {
				for _, axis := range []*ir.Instr{x, y, z} {
					pp := b.GEP(axis, i)
					val := b.Load(ir.F64, pp)
					n := b.Call(ir.F64, "floor", b.FDiv(val, boxL))
					b.Store(b.FSub(val, b.FMul(n, boxL)), pp)
				}
			})
		})
		// Integrate: v += f dt; x += v dt.
		h.loop("integ", ir.I64c(0), natoms, func(i ir.Value) {
			for _, axis := range []struct {
				p, vp, fp *ir.Instr
			}{{x, vx, fx}, {y, vy, fy}, {z, vz, fz}} {
				vp := b.GEP(axis.vp, i)
				nv := b.FAdd(b.Load(ir.F64, vp), b.FMul(b.Load(ir.F64, b.GEP(axis.fp, i)), dt))
				b.Store(nv, vp)
				pp := b.GEP(axis.p, i)
				b.Store(b.FAdd(b.Load(ir.F64, pp), b.FMul(nv, dt)), pp)
			}
		})
	})

	// Kinetic energy and position checksum.
	ke := h.newVar(ir.F64, ir.F64c(0))
	cs := h.newVar(ir.F64, ir.F64c(0))
	h.loop("final", ir.I64c(0), natoms, func(i ir.Value) {
		vxi := b.Load(ir.F64, b.GEP(vx, i))
		vyi := b.Load(ir.F64, b.GEP(vy, i))
		vzi := b.Load(ir.F64, b.GEP(vz, i))
		sq := b.FAdd(b.FAdd(b.FMul(vxi, vxi), b.FMul(vyi, vyi)), b.FMul(vzi, vzi))
		h.faddVar(ke, b.FMul(ir.F64c(0.5), sq))
		pos := b.FAdd(b.FAdd(b.Load(ir.F64, b.GEP(x, i)), b.Load(ir.F64, b.GEP(y, i))), b.Load(ir.F64, b.GEP(z, i)))
		h.faddVar(cs, pos)
	})
	h.printF64(h.get(ke))
	h.printF64(h.get(cs))
	b.Ret(nil)

	return m, comdArgs(), "Mantevo",
		"molecular dynamics with cutoff Lennard-Jones forces on a jittered lattice", 900000
}

// oracleCoMD mirrors the IR program in Go with identical operation order.
func oracleCoMD(nx, steps int64, dt, cutoff float64, seed int64) []float64 {
	natoms := nx * nx * nx
	lcg := newGoLCG(seed)
	x := make([]float64, natoms)
	y := make([]float64, natoms)
	z := make([]float64, natoms)
	vx := make([]float64, natoms)
	vy := make([]float64, natoms)
	vz := make([]float64, natoms)
	fx := make([]float64, natoms)
	fy := make([]float64, natoms)
	fz := make([]float64, natoms)
	const spacing = 1.2
	a := int64(0)
	for i := int64(0); i < nx; i++ {
		for j := int64(0); j < nx; j++ {
			for k := int64(0); k < nx; k++ {
				x[a] = float64(i)*spacing + (lcg.f64()-0.5)*0.1
				y[a] = float64(j)*spacing + (lcg.f64()-0.5)*0.1
				z[a] = float64(k)*spacing + (lcg.f64()-0.5)*0.1
				vx[a] = (lcg.f64() - 0.5) * 0.2
				vy[a] = (lcg.f64() - 0.5) * 0.2
				vz[a] = (lcg.f64() - 0.5) * 0.2
				a++
			}
		}
	}
	cutoff2 := cutoff * cutoff
	var out []float64
	for s := int64(0); s < steps; s++ {
		for i := int64(0); i < natoms; i++ {
			fx[i], fy[i], fz[i] = 0, 0, 0
		}
		var pe float64
		for i := int64(0); i < natoms; i++ {
			for j := i + 1; j < natoms; j++ {
				dx := x[i] - x[j]
				dy := y[i] - y[j]
				dz := z[i] - z[j]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 < cutoff2 && r2 > 1e-12 {
					r2i := 1 / r2
					r6i := r2i * r2i * r2i
					ff := 24 * r6i * (2*r6i - 1) * r2i
					fx[i] += ff * dx
					fx[j] -= ff * dx
					fy[i] += ff * dy
					fy[j] -= ff * dy
					fz[i] += ff * dz
					fz[j] -= ff * dz
					pe += 4 * r6i * (r6i - 1)
				}
			}
		}
		out = append(out, interp.QuantizeOutput(pe))
		if pe > 0 {
			boxL := float64(nx) * spacing
			for i := int64(0); i < natoms; i++ {
				x[i] = x[i] - math.Floor(x[i]/boxL)*boxL
				y[i] = y[i] - math.Floor(y[i]/boxL)*boxL
				z[i] = z[i] - math.Floor(z[i]/boxL)*boxL
			}
		}
		for i := int64(0); i < natoms; i++ {
			vx[i] += fx[i] * dt
			x[i] += vx[i] * dt
			vy[i] += fy[i] * dt
			y[i] += vy[i] * dt
			vz[i] += fz[i] * dt
			z[i] += vz[i] * dt
		}
	}
	var ke, cs float64
	for i := int64(0); i < natoms; i++ {
		sq := vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i]
		ke += 0.5 * sq
		cs += x[i] + y[i] + z[i]
	}
	return append(out, interp.QuantizeOutput(ke), interp.QuantizeOutput(cs))
}
