package prog

import "repro/internal/ir"

// Needle (Rodinia): Needleman-Wunsch global sequence alignment. A quadratic
// DP over two LCG-generated 4-letter sequences with max-of-three recurrence
// and affine gap penalty. Like Pathfinder, the max-selection masks many
// corrupted lanes, and only the DP boundary reaches the output.
//
// Inputs: n (sequence length), penalty (gap cost), match (match reward),
// seed. Output: the final alignment score.

func init() { register("needle", buildNeedle) }

func needleArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "n", Kind: ArgInt, Min: 4, Max: 48, SmallMin: 4, SmallMax: 8, Ref: 16},
		{Name: "penalty", Kind: ArgInt, Min: 1, Max: 20, SmallMin: 1, SmallMax: 4, Ref: 10},
		{Name: "match", Kind: ArgInt, Min: 1, Max: 10, SmallMin: 1, SmallMax: 3, Ref: 5},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 3},
	}
}

func buildNeedle() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("needle")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "n", Ty: ir.I64},
		&ir.Param{Name: "penalty", Ty: ir.I64},
		&ir.Param{Name: "match", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	n := b.Param(0)
	penalty := b.Param(1)
	match := b.Param(2)
	seed := b.Param(3)

	state := h.newVar(ir.I64, seed)
	seq1 := b.Alloca(n)
	seq2 := b.Alloca(n)
	np1 := b.Add(n, ir.I64c(1))
	dp := b.Alloca(b.Mul(np1, np1))

	four := ir.I64c(4)
	h.loop("gen1", ir.I64c(0), n, func(i ir.Value) {
		b.Store(h.lcgMod(state, four), b.GEP(seq1, i))
	})
	h.loop("gen2", ir.I64c(0), n, func(i ir.Value) {
		b.Store(h.lcgMod(state, four), b.GEP(seq2, i))
	})

	// DP boundary: dp[0][j] = -j*penalty, dp[i][0] = -i*penalty.
	h.loop("b0", ir.I64c(0), np1, func(j ir.Value) {
		b.Store(b.Sub(ir.I64c(0), b.Mul(j, penalty)), h.idx2(dp, ir.I64c(0), np1, j))
	})
	h.loop("b1", ir.I64c(1), np1, func(i ir.Value) {
		b.Store(b.Sub(ir.I64c(0), b.Mul(i, penalty)), h.idx2(dp, i, np1, ir.I64c(0)))
	})

	negMatch := h.newVar(ir.I64, b.Sub(ir.I64c(0), match))
	h.loop("dp.i", ir.I64c(1), np1, func(i ir.Value) {
		h.loop("dp.j", ir.I64c(1), np1, func(j ir.Value) {
			a := b.Load(ir.I64, b.GEP(seq1, b.Sub(i, ir.I64c(1))))
			c := b.Load(ir.I64, b.GEP(seq2, b.Sub(j, ir.I64c(1))))
			eq := b.ICmp(ir.OpICmpEQ, a, c)
			sim := b.Select(eq, match, h.get(negMatch))
			diag := b.Add(b.Load(ir.I64, h.idx2(dp, b.Sub(i, ir.I64c(1)), np1, b.Sub(j, ir.I64c(1)))), sim)
			up := b.Sub(b.Load(ir.I64, h.idx2(dp, b.Sub(i, ir.I64c(1)), np1, j)), penalty)
			leftv := b.Sub(b.Load(ir.I64, h.idx2(dp, i, np1, b.Sub(j, ir.I64c(1)))), penalty)
			b.Store(h.maxI64(h.maxI64(diag, up), leftv), h.idx2(dp, i, np1, j))
		})
	})

	// Output: the final alignment score only — faults must survive the
	// max-of-three recurrence to reach it.
	h.printI64(b.Load(ir.I64, h.idx2(dp, n, np1, n)))
	b.Ret(nil)

	return m, needleArgs(), "Rodinia",
		"Needleman-Wunsch DNA sequence alignment (nonlinear global optimization)", 600000
}

// oracleNeedle mirrors the IR program in Go.
func oracleNeedle(n, penalty, match, seed int64) []int64 {
	lcg := newGoLCG(seed)
	seq1 := make([]int64, n)
	seq2 := make([]int64, n)
	for i := range seq1 {
		seq1[i] = lcg.mod(4)
	}
	for i := range seq2 {
		seq2[i] = lcg.mod(4)
	}
	np1 := n + 1
	dp := make([]int64, np1*np1)
	for j := int64(0); j < np1; j++ {
		dp[j] = -j * penalty
	}
	for i := int64(1); i < np1; i++ {
		dp[i*np1] = -i * penalty
	}
	max2 := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	for i := int64(1); i < np1; i++ {
		for j := int64(1); j < np1; j++ {
			sim := -match
			if seq1[i-1] == seq2[j-1] {
				sim = match
			}
			diag := dp[(i-1)*np1+(j-1)] + sim
			up := dp[(i-1)*np1+j] - penalty
			left := dp[i*np1+(j-1)] - penalty
			dp[i*np1+j] = max2(max2(diag, up), left)
		}
	}
	return []int64{dp[n*np1+n]}
}
