package prog

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// SpMV (SHOC): an iterated banded sparse matrix-vector product with a
// per-iteration norm reduction — the row-parallel kernel at the heart of
// iterative linear solvers. The matrix is a nonnegative band matrix derived
// from the seed; each iteration computes y = gain * A x, reduces the 1-norm
// of y, and feeds y back as the next x. The norm gates a staircase of
// stabilization passes (damping, max-component tracking, renormalization)
// that only geometrically growing iterates reach, so code coverage depends
// on the input regime (gain × bandwidth × iteration count), the property the
// rare-branch-guided fuzzer exploits.
//
// Inputs: n (rows), band (half-bandwidth), iters, gain, seed. Output: the
// iterate norm per iteration (plus its max component on iterations crossing
// the second threshold), then a final vector checksum.

func init() { register("spmv", buildSpMV) }

// Norm thresholds of the stabilization staircase. The reference input and
// the small-fuzzing ranges keep the growth factor ~0.5·gain·(2·band+1) low
// enough to stay below spmvT1; crossing all three takes a jointly high
// gain × band × iters regime that random input sampling rarely reaches.
const (
	spmvT1 = 250
	spmvT2 = 2.0e4
	spmvT3 = 1.5e6
)

func spmvArgs() []ArgSpec {
	return []ArgSpec{
		{Name: "n", Kind: ArgInt, Min: 8, Max: 48, SmallMin: 8, SmallMax: 16, Ref: 24},
		{Name: "band", Kind: ArgInt, Min: 1, Max: 6, SmallMin: 1, SmallMax: 2, Ref: 2},
		{Name: "iters", Kind: ArgInt, Min: 1, Max: 10, SmallMin: 1, SmallMax: 2, Ref: 3},
		{Name: "gain", Kind: ArgFloat, Min: 0.5, Max: 1.6, SmallMin: 0.6, SmallMax: 0.9, Ref: 0.7},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 1 << 20, SmallMin: 1, SmallMax: 64, Ref: 17},
	}
}

func buildSpMV() (*ir.Module, []ArgSpec, string, string, int64) {
	m := ir.NewModule("spmv")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "n", Ty: ir.I64},
		&ir.Param{Name: "band", Ty: ir.I64},
		&ir.Param{Name: "iters", Ty: ir.I64},
		&ir.Param{Name: "gain", Ty: ir.F64},
		&ir.Param{Name: "seed", Ty: ir.I64},
	)
	b := ir.NewBuilder(f)
	h := v{b}

	n := b.Param(0)
	band := b.Param(1)
	iters := b.Param(2)
	gain := b.Param(3)
	seed := b.Param(4)

	width := b.Add(b.Mul(band, ir.I64c(2)), ir.I64c(1))
	nnz := b.Mul(n, width)
	a := b.Alloca(nnz)
	x := b.Alloca(n)
	y := b.Alloca(n)
	state := h.newVar(ir.I64, seed)

	// Seed-derived start vector and band entries, all in [0,1).
	h.loop("initx", ir.I64c(0), n, func(i ir.Value) {
		b.Store(h.lcgF64(state), b.GEP(x, i))
	})
	h.loop("inita", ir.I64c(0), nnz, func(e ir.Value) {
		b.Store(h.lcgF64(state), b.GEP(a, e))
	})

	h.loop("iter", ir.I64c(0), iters, func(it ir.Value) {
		_ = it
		norm := h.newVar(ir.F64, ir.F64c(0))
		h.loop("row", ir.I64c(0), n, func(i ir.Value) {
			acc := h.newVar(ir.F64, ir.F64c(0))
			h.loop("col", ir.I64c(0), width, func(k ir.Value) {
				j := b.Add(b.Sub(i, band), k)
				inLo := b.ICmp(ir.OpICmpSGE, j, ir.I64c(0))
				inHi := b.ICmp(ir.OpICmpSLT, j, n)
				h.ifThen("inband", b.And(inLo, inHi), func() {
					av := b.Load(ir.F64, b.GEP(a, b.Add(b.Mul(i, width), k)))
					xv := b.Load(ir.F64, b.GEP(x, j))
					h.faddVar(acc, b.FMul(av, xv))
				})
			})
			yi := b.FMul(gain, h.get(acc))
			b.Store(yi, b.GEP(y, i))
			h.faddVar(norm, yi)
		})
		nv := h.get(norm)
		h.printF64(nv)
		// Stabilization staircase: growing iterates are damped, fast-growing
		// ones track their max component, runaway ones are renormalized.
		h.ifThen("damp", b.FCmp(ir.OpFCmpOGT, nv, ir.F64c(spmvT1)), func() {
			h.loop("damp.s", ir.I64c(0), n, func(i ir.Value) {
				p := b.GEP(y, i)
				b.Store(b.FMul(b.Load(ir.F64, p), ir.F64c(0.5)), p)
			})
			h.ifThen("maxc", b.FCmp(ir.OpFCmpOGT, nv, ir.F64c(spmvT2)), func() {
				mx := h.newVar(ir.F64, ir.F64c(0))
				h.loop("maxc.m", ir.I64c(0), n, func(i ir.Value) {
					val := b.Load(ir.F64, b.GEP(y, i))
					bigger := b.FCmp(ir.OpFCmpOGT, val, h.get(mx))
					h.set(mx, b.Select(bigger, val, h.get(mx)))
				})
				h.printF64(h.get(mx))
				h.ifThen("renorm", b.FCmp(ir.OpFCmpOGT, nv, ir.F64c(spmvT3)), func() {
					scale := b.FDiv(ir.F64c(spmvT3), nv)
					h.loop("renorm.s", ir.I64c(0), n, func(i ir.Value) {
						p := b.GEP(y, i)
						b.Store(b.FMul(b.Load(ir.F64, p), scale), p)
					})
				})
			})
		})
		h.loop("feed", ir.I64c(0), n, func(i ir.Value) {
			b.Store(b.Load(ir.F64, b.GEP(y, i)), b.GEP(x, i))
		})
	})

	cs := h.newVar(ir.F64, ir.F64c(0))
	h.loop("final", ir.I64c(0), n, func(i ir.Value) {
		h.faddVar(cs, b.Load(ir.F64, b.GEP(x, i)))
	})
	h.printF64(h.get(cs))
	b.Ret(nil)

	return m, spmvArgs(), "SHOC",
		"iterated banded sparse matrix-vector product with norm-gated stabilization passes", 500000
}

// oracleSpMV mirrors the IR program in Go with identical operation order.
func oracleSpMV(n, band, iters int64, gain float64, seed int64) []float64 {
	width := 2*band + 1
	lcg := newGoLCG(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	a := make([]float64, n*width)
	for i := int64(0); i < n; i++ {
		x[i] = lcg.f64()
	}
	for e := int64(0); e < n*width; e++ {
		a[e] = lcg.f64()
	}
	var out []float64
	for it := int64(0); it < iters; it++ {
		var norm float64
		for i := int64(0); i < n; i++ {
			var acc float64
			for k := int64(0); k < width; k++ {
				j := i - band + k
				if j >= 0 && j < n {
					acc += a[i*width+k] * x[j]
				}
			}
			y[i] = gain * acc
			norm += y[i]
		}
		out = append(out, interp.QuantizeOutput(norm))
		if norm > spmvT1 {
			for i := int64(0); i < n; i++ {
				y[i] *= 0.5
			}
			if norm > spmvT2 {
				var mx float64
				for i := int64(0); i < n; i++ {
					if y[i] > mx {
						mx = y[i]
					}
				}
				out = append(out, interp.QuantizeOutput(mx))
				if norm > spmvT3 {
					scale := spmvT3 / norm
					for i := int64(0); i < n; i++ {
						y[i] *= scale
					}
				}
			}
		}
		copy(x, y)
	}
	var cs float64
	for i := int64(0); i < n; i++ {
		cs += x[i]
	}
	return append(out, interp.QuantizeOutput(cs))
}
