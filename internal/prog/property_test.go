package prog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// Property tests over random valid inputs: each benchmark's output must
// satisfy its algorithm's invariants, not just match the oracle.

func qcfg() *quick.Config { return &quick.Config{MaxCount: 25} }

func TestPathfinderPathCostBounds(t *testing.T) {
	b := Build("pathfinder")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runInts(t, b, in)
		rows := int64(in[0])
		amp := int64(in[3])
		// The min path sums exactly `rows` wall cells, each in [0, amp).
		return out[0] >= 0 && out[0] <= rows*(amp-1)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestNeedleScoreBounds(t *testing.T) {
	b := Build("needle")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runInts(t, b, in)
		n, penalty, match := int64(in[0]), int64(in[1]), int64(in[2])
		score := out[0]
		// Upper bound: all matches. Lower bound: the all-gaps path.
		return score <= n*match && score >= -2*n*penalty
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	b := Build("fft")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		spec := out[len(out)-1]
		n := int64(1) << int64(in[0])
		lcg := newGoLCG(int64(in[1]))
		var timeE float64
		for i := int64(0); i < n; i++ {
			re := (lcg.f64()*2 - 1) * in[2]
			im := (lcg.f64()*2 - 1) * in[2]
			timeE += re*re + im*im
		}
		if timeE == 0 {
			return spec == 0
		}
		ratio := spec / (float64(n) * timeE)
		return ratio > 0.9999 && ratio < 1.0001
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestParticlefilterEstimatesFinite(t *testing.T) {
	b := Build("particlefilter")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		frames := int(in[1])
		if len(out) != 2*frames {
			return false
		}
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestCoMDKineticEnergyNonNegative(t *testing.T) {
	b := Build("comd")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		ke := out[len(out)-2]
		return ke >= 0 && !math.IsNaN(ke) && !math.IsInf(ke, 0)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHPCCGResidualNonNegative(t *testing.T) {
	b := Build("hpccg")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		residual := out[0]
		return residual >= 0 && !math.IsNaN(residual)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestXSBenchHistogramSumsToLookups(t *testing.T) {
	b := Build("xsbench")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runInts(t, b, in)
		var total int64
		for _, c := range out {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == int64(in[0]) // every lookup picks exactly one winner
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}
