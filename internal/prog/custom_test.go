package prog

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/xrand"
)

// buildDotProduct constructs a small user program: a dot product of two
// LCG-generated vectors with a printed result.
func buildDotProduct(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule("dotprod")
	f := m.NewFunc("main", ir.Void,
		&ir.Param{Name: "n", Ty: ir.I64},
		&ir.Param{Name: "seed", Ty: ir.I64},
		&ir.Param{Name: "scale", Ty: ir.F64},
	)
	b := ir.NewBuilder(f)
	h := v{b}
	n := b.Param(0)
	state := h.newVar(ir.I64, b.Param(1))
	va := b.Alloca(n)
	vb := b.Alloca(n)
	h.loop("gen", ir.I64c(0), n, func(i ir.Value) {
		b.Store(b.FMul(h.lcgF64(state), b.Param(2)), b.GEP(va, i))
		b.Store(h.lcgF64(state), b.GEP(vb, i))
	})
	acc := h.newVar(ir.F64, ir.F64c(0))
	h.loop("dot", ir.I64c(0), n, func(i ir.Value) {
		h.faddVar(acc, b.FMul(b.Load(ir.F64, b.GEP(va, i)), b.Load(ir.F64, b.GEP(vb, i))))
	})
	h.printF64(h.get(acc))
	b.Ret(nil)
	m.Finalize()
	return m
}

const dotSpec = "n:int:8:256:32,seed:int:1:100000:7,scale:float:0.1:10:1"

func TestParseArgSpecs(t *testing.T) {
	specs, err := ParseArgSpecs(dotSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Name != "n" || specs[0].Kind != ArgInt || specs[0].Min != 8 || specs[0].Max != 256 || specs[0].Ref != 32 {
		t.Fatalf("spec[0] = %+v", specs[0])
	}
	if specs[2].Kind != ArgFloat {
		t.Fatalf("spec[2] kind = %v", specs[2].Kind)
	}
	// Default small range: bottom tenth.
	if specs[0].SmallMin != 8 || specs[0].SmallMax != 8+(256-8)*0.1 {
		t.Fatalf("small range = [%v, %v]", specs[0].SmallMin, specs[0].SmallMax)
	}
	// Explicit small range.
	withSmall, err := ParseArgSpecs("x:int:1:100:50:2:5")
	if err != nil {
		t.Fatal(err)
	}
	if withSmall[0].SmallMin != 2 || withSmall[0].SmallMax != 5 {
		t.Fatalf("explicit small range = %+v", withSmall[0])
	}
}

func TestParseArgSpecsErrors(t *testing.T) {
	bad := []string{
		"",
		"x:int:1:100",      // missing ref
		"x:bool:1:100:50",  // bad kind
		"x:int:1:abc:50",   // bad number
		"x:int:100:1:50",   // inverted range
		"x:int:1:100:999",  // ref outside range
		"x:int:1:100:50:2", // partial small range
	}
	for _, s := range bad {
		if _, err := ParseArgSpecs(s); err == nil {
			t.Errorf("spec %q accepted", s)
		}
	}
}

func TestLoadCustomRoundTrip(t *testing.T) {
	m := buildDotProduct(t)
	text := ir.Print(m)
	b, err := LoadCustom(text, dotSpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "dotprod" || b.Suite != "custom" {
		t.Fatalf("benchmark = %+v", b)
	}
	// The custom benchmark must run under the standard campaign machinery.
	g, err := campaign.NewGolden(b.Prog, b.Encode(b.RefInput()), b.MaxDyn)
	if err != nil {
		t.Fatal(err)
	}
	c := campaign.Overall(b.Prog, g, 150, xrand.New(1))
	if c.Trials != 150 {
		t.Fatalf("trials = %d", c.Trials)
	}
	if c.SDC == 0 {
		t.Fatal("dot product with printed output should show some SDCs")
	}
}

func TestCustomSignatureMismatch(t *testing.T) {
	m := buildDotProduct(t)
	// Spec with a float where the program takes an int.
	if _, err := Custom(m, []ArgSpec{
		{Name: "n", Kind: ArgFloat, Min: 1, Max: 10, Ref: 5},
		{Name: "seed", Kind: ArgInt, Min: 1, Max: 10, Ref: 5},
		{Name: "scale", Kind: ArgFloat, Min: 1, Max: 10, Ref: 5},
	}, 0); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("want signature error, got %v", err)
	}
	// Wrong arity.
	if _, err := Custom(m, []ArgSpec{{Name: "n", Kind: ArgInt, Min: 1, Max: 10, Ref: 5}}, 0); err == nil {
		t.Fatal("want arity error")
	}
}

func TestCustomBenchmarkThroughPipelinePieces(t *testing.T) {
	// The custom program must work with profiling and per-instruction FI,
	// the pieces the PEPPA-X pipeline uses.
	m := buildDotProduct(t)
	b, err := Custom(m, mustSpecs(t, dotSpec), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := interp.Run(b.Prog, b.Encode([]float64{16, 3, 2}), interp.Options{Profile: true})
	if r.Trap != nil || len(r.Output) != 1 {
		t.Fatalf("run failed: %v / %v", r.Trap, r.Output)
	}
	if cov := r.Coverage(b.Prog.NumInstrs()); cov < 0.9 {
		t.Fatalf("coverage %v", cov)
	}
}

func mustSpecs(t *testing.T, s string) []ArgSpec {
	t.Helper()
	specs, err := ParseArgSpecs(s)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}
