package prog

import (
	"testing"

	"repro/internal/interp"
)

// BenchmarkGoldenRuns measures interpreter throughput on each benchmark's
// reference input — the unit cost every FI campaign multiplies.
func BenchmarkGoldenRuns(b *testing.B) {
	for _, name := range Names() {
		bench := Build(name)
		in := bench.Encode(bench.RefInput())
		b.Run(name, func(b *testing.B) {
			var dyn int64
			for i := 0; i < b.N; i++ {
				r := interp.Run(bench.Prog, in, interp.Options{MaxDyn: bench.MaxDyn})
				if r.Trap != nil {
					b.Fatal(r.Trap)
				}
				dyn = r.DynCount
			}
			b.ReportMetric(float64(dyn), "dyn-instrs")
			b.ReportMetric(float64(dyn)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mdyn/s")
		})
	}
}

// BenchmarkProfiledRuns measures the profiling overhead PEPPA-X's fitness
// evaluation pays per candidate.
func BenchmarkProfiledRuns(b *testing.B) {
	bench := Build("pathfinder")
	in := bench.Encode(bench.RefInput())
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interp.Run(bench.Prog, in, interp.Options{})
		}
	})
	b.Run("profiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interp.Run(bench.Prog, in, interp.Options{Profile: true})
		}
	})
	b.Run("tainted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interp.Run(bench.Prog, in, interp.Options{TrackPropagation: true})
		}
	})
}

// BenchmarkBuild measures benchmark construction + compilation cost.
func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build("comd")
	}
}
