package prog

import (
	"os"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/xrand"
)

// runOutVals executes a benchmark and returns the raw output values.
func runOutVals(t testing.TB, b *Benchmark, input []float64) []interp.OutVal {
	t.Helper()
	r := interp.Run(b.Prog, b.Encode(input), interp.Options{MaxDyn: b.MaxDyn})
	if r.Trap != nil {
		t.Fatalf("%s trapped on %v: %v", b.Name, input, r.Trap)
	}
	if r.BudgetExceeded {
		t.Fatalf("%s exceeded budget on %v", b.Name, input)
	}
	return r.Output
}

// asFloats converts an output sequence to float64s (I64 outputs become
// exact small floats).
func asFloats(out []interp.OutVal) []float64 {
	fs := make([]float64, len(out))
	for i, o := range out {
		if o.Ty == ir.I64 {
			fs[i] = float64(o.Int())
		} else {
			fs[i] = o.Float()
		}
	}
	return fs
}

func TestAllBenchmarksRegistered(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("want 10 benchmarks, have %d", len(names))
	}
	for _, b := range All() {
		if b.Prog == nil || len(b.Args) == 0 || b.Suite == "" || b.Description == "" {
			t.Fatalf("%s incompletely described", b.Name)
		}
	}
}

func TestBenchmarkModulesVerifyAndRoundTrip(t *testing.T) {
	for _, b := range All() {
		if err := ir.Verify(b.Module); err != nil {
			t.Fatalf("%s: verify: %v", b.Name, err)
		}
		text := ir.Print(b.Module)
		m2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		if err := ir.Verify(m2); err != nil {
			t.Fatalf("%s: verify parsed: %v", b.Name, err)
		}
		if ir.Print(m2) != text {
			t.Fatalf("%s: print/parse round-trip mismatch", b.Name)
		}
		// The parsed module must compile and execute identically.
		p2, err := interp.Compile(m2)
		if err != nil {
			t.Fatalf("%s: compile parsed: %v", b.Name, err)
		}
		in := b.Encode(b.RefInput())
		r1 := interp.Run(b.Prog, in, interp.Options{})
		r2 := interp.Run(p2, in, interp.Options{})
		if !interp.OutputEqual(r1.Output, r2.Output) {
			t.Fatalf("%s: parsed module output differs", b.Name)
		}
	}
}

func TestReferenceInputsAreValid(t *testing.T) {
	for _, b := range All() {
		r := interp.Run(b.Prog, b.Encode(b.RefInput()), interp.Options{MaxDyn: b.MaxDyn, Profile: true})
		if r.Trap != nil {
			t.Fatalf("%s ref input traps: %v", b.Name, r.Trap)
		}
		if r.BudgetExceeded {
			t.Fatalf("%s ref input exceeds MaxDyn", b.Name)
		}
		if len(r.Output) == 0 {
			t.Fatalf("%s produces no output", b.Name)
		}
		if r.DynCount < 1000 {
			t.Fatalf("%s ref workload suspiciously small: %d dyn instrs", b.Name, r.DynCount)
		}
		t.Logf("%s: %d static instrs, %d dyn instrs, coverage %.2f",
			b.Name, b.Prog.NumInstrs(), r.DynCount, r.Coverage(b.Prog.NumInstrs()))
	}
}

func TestRandomInputsAreValid(t *testing.T) {
	rng := xrand.New(99)
	for _, b := range All() {
		for i := 0; i < 15; i++ {
			in := b.RandomInput(rng)
			r := interp.Run(b.Prog, b.Encode(in), interp.Options{MaxDyn: b.MaxDyn})
			if r.Trap != nil {
				t.Fatalf("%s traps on random input %v: %v", b.Name, in, r.Trap)
			}
			if r.BudgetExceeded {
				t.Fatalf("%s exceeds budget on random input %v", b.Name, in)
			}
		}
	}
}

func TestSmallScaledInputsAreValid(t *testing.T) {
	rng := xrand.New(7)
	for _, b := range All() {
		in := b.RandomInputScaled(rng, 0)
		r := interp.Run(b.Prog, b.Encode(in), interp.Options{MaxDyn: b.MaxDyn})
		if r.Trap != nil || r.BudgetExceeded {
			t.Fatalf("%s small input %v failed: %v", b.Name, in, r.Trap)
		}
		// Small inputs should be cheaper than the reference input.
		ref := interp.Run(b.Prog, b.Encode(b.RefInput()), interp.Options{MaxDyn: b.MaxDyn})
		if r.DynCount > ref.DynCount*3 {
			t.Fatalf("%s small input (%d dyn) much larger than ref (%d dyn)",
				b.Name, r.DynCount, ref.DynCount)
		}
	}
}

func TestNeedleMatchesOracle(t *testing.T) {
	b := Build("needle")
	rng := xrand.New(2)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 15; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		wantInts := oracleNeedle(int64(in[0]), int64(in[1]), int64(in[2]), int64(in[3]))
		if len(got) != len(wantInts) {
			t.Fatalf("needle %v: length %d vs %d", in, len(got), len(wantInts))
		}
		for i := range got {
			if got[i] != float64(wantInts[i]) {
				t.Fatalf("needle %v: out[%d] = %v, want %d", in, i, got[i], wantInts[i])
			}
		}
	}
}

func TestNeedleScoreBound(t *testing.T) {
	// The alignment score can never exceed n*match.
	b := Build("needle")
	rng := xrand.New(5)
	for i := 0; i < 10; i++ {
		in := b.RandomInput(rng)
		out := runOutVals(t, b, in)
		score := out[0].Int()
		if score > int64(in[0])*int64(in[2]) {
			t.Fatalf("score %d exceeds n*match for %v", score, in)
		}
	}
}

func TestFFTMatchesOracle(t *testing.T) {
	b := Build("fft")
	rng := xrand.New(3)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 15; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		want := oracleFFT(int64(in[0]), int64(in[1]), in[2])
		if !eqFloats(got, want) {
			t.Fatalf("fft %v: got %v want %v", in, got, want)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: spectral energy = n * time-domain energy. Compare loosely —
	// the identity validates the transform itself.
	b := Build("fft")
	in := []float64{5, 77, 1.0}
	out := asFloats(runOutVals(t, b, in))
	specEnergy := out[len(out)-1]
	n := int64(1) << 5
	lcg := newGoLCG(77)
	var timeEnergy float64
	for i := int64(0); i < n; i++ {
		re := lcg.f64()*2 - 1
		im := lcg.f64()*2 - 1
		timeEnergy += re*re + im*im
	}
	ratio := specEnergy / (float64(n) * timeEnergy)
	if ratio < 0.999999 || ratio > 1.000001 {
		t.Fatalf("Parseval violated: ratio %v", ratio)
	}
}

func TestParticlefilterMatchesOracle(t *testing.T) {
	b := Build("particlefilter")
	rng := xrand.New(4)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 10; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		want := oracleParticlefilter(int64(in[0]), int64(in[1]), int64(in[2]), in[3])
		if !eqFloats(got, want) {
			t.Fatalf("particlefilter %v mismatch", in)
		}
	}
}

func TestParticlefilterTracks(t *testing.T) {
	// With low noise the estimate should roughly follow the object
	// (x grows ~1/frame, y ~0.5/frame).
	b := Build("particlefilter")
	out := asFloats(runOutVals(t, b, []float64{64, 10, 3, 0.5}))
	lastX := out[len(out)-2]
	lastY := out[len(out)-1]
	if lastX < 5 || lastX > 15 {
		t.Fatalf("estimate x = %v after 10 frames, want ~10", lastX)
	}
	if lastY < 2 || lastY > 8 {
		t.Fatalf("estimate y = %v after 10 frames, want ~5", lastY)
	}
}

func TestCoMDMatchesOracle(t *testing.T) {
	b := Build("comd")
	rng := xrand.New(6)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 8; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		want := oracleCoMD(int64(in[0]), int64(in[1]), in[2], in[3], int64(in[4]))
		if !eqFloats(got, want) {
			t.Fatalf("comd %v mismatch:\n got %v\nwant %v", in, got, want)
		}
	}
}

func TestCoMDEnergyFinite(t *testing.T) {
	b := Build("comd")
	out := asFloats(runOutVals(t, b, b.RefInput()))
	for i, v := range out {
		if v != v || v > 1e15 || v < -1e15 {
			t.Fatalf("comd output %d non-finite or exploded: %v", i, v)
		}
	}
	ke := out[len(out)-2]
	if ke < 0 {
		t.Fatalf("kinetic energy %v negative", ke)
	}
}

func TestHPCCGMatchesOracle(t *testing.T) {
	b := Build("hpccg")
	rng := xrand.New(8)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 10; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		want := oracleHPCCG(int64(in[0]), int64(in[1]), int64(in[2]), int64(in[3]), int64(in[4]))
		if !eqFloats(got, want) {
			t.Fatalf("hpccg %v mismatch:\n got %v\nwant %v", in, got, want)
		}
	}
}

func TestHPCCGConverges(t *testing.T) {
	// With enough iterations the residual should drop far below the initial
	// norm (the system is symmetric positive definite).
	b := Build("hpccg")
	out := asFloats(runOutVals(t, b, []float64{4, 4, 4, 40, 9}))
	residual := out[0]
	if residual > 1e-6 {
		t.Fatalf("CG residual %v did not converge", residual)
	}
}

func TestXSBenchMatchesOracle(t *testing.T) {
	b := Build("xsbench")
	rng := xrand.New(10)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 10; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	for _, in := range inputs {
		got := asFloats(runOutVals(t, b, in))
		want := oracleXSBench(int64(in[0]), int64(in[1]), int64(in[2]), int64(in[3]), in[4])
		if !eqFloats(got, want) {
			t.Fatalf("xsbench %v mismatch:\n got %v\nwant %v", in, got, want)
		}
	}
}

func TestXSBenchAccumulatorsPositive(t *testing.T) {
	b := Build("xsbench")
	out := asFloats(runOutVals(t, b, b.RefInput()))
	if len(out) != xsChannels {
		t.Fatalf("want %d channels, got %d", xsChannels, len(out))
	}
	for c, vFl := range out {
		if vFl <= 0 {
			t.Fatalf("channel %d accumulator %v not positive", c, vFl)
		}
	}
}

func TestEncodeRejectsWrongArity(t *testing.T) {
	b := Build("pathfinder")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong arity")
		}
	}()
	b.Encode([]float64{1, 2})
}

func TestClampInput(t *testing.T) {
	b := Build("pathfinder")
	in := []float64{1e9, -5, 3.7, 2.2}
	b.ClampInput(in)
	if in[0] != 64 || in[1] != 4 || in[2] != 4 || in[3] != 2 {
		t.Fatalf("clamped = %v", in)
	}
}

func TestArgSpecClamp(t *testing.T) {
	a := ArgSpec{Kind: ArgInt, Min: 2, Max: 10}
	if a.Clamp(3.6) != 4 {
		t.Fatal("int rounding")
	}
	if a.Clamp(-1) != 2 || a.Clamp(99) != 10 {
		t.Fatal("bounds")
	}
	fa := ArgSpec{Kind: ArgFloat, Min: 0.5, Max: 1.5}
	if fa.Clamp(0.7) != 0.7 {
		t.Fatal("float passthrough")
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	// Two independent Build calls must produce identical behaviour.
	a := Build("fft")
	b := Build("fft")
	in := a.Encode(a.RefInput())
	ra := interp.Run(a.Prog, in, interp.Options{})
	rb := interp.Run(b.Prog, in, interp.Options{})
	if !interp.OutputEqual(ra.Output, rb.Output) || ra.DynCount != rb.DynCount {
		t.Fatal("rebuild changed program behaviour")
	}
}

func TestWorkloadScalesWithInput(t *testing.T) {
	// Larger inputs must execute more dynamic instructions — the N_i terms
	// of the PEPPA-X fitness depend on this.
	cases := map[string][2][]float64{
		"pathfinder":     {{8, 8, 5, 10}, {48, 48, 5, 10}},
		"needle":         {{8, 5, 3, 3}, {40, 5, 3, 3}},
		"particlefilter": {{8, 2, 5, 1}, {96, 12, 5, 1}},
		"comd":           {{2, 1, 0.005, 1.8, 13}, {3, 8, 0.005, 1.8, 13}},
		"hpccg":          {{2, 2, 2, 5, 17}, {5, 5, 5, 40, 17}},
		"xsbench":        {{50, 20, 2, 19, 0.3}, {800, 200, 6, 19, 0.3}},
		"fft":            {{3, 11, 1}, {8, 11, 1}},
	}
	for name, pair := range cases {
		b := Build(name)
		small := interp.Run(b.Prog, b.Encode(pair[0]), interp.Options{MaxDyn: b.MaxDyn})
		large := interp.Run(b.Prog, b.Encode(pair[1]), interp.Options{MaxDyn: b.MaxDyn})
		if small.Trap != nil || large.Trap != nil || small.BudgetExceeded || large.BudgetExceeded {
			t.Fatalf("%s: runs failed (%v, %v)", name, small.Trap, large.Trap)
		}
		if large.DynCount <= small.DynCount*2 {
			t.Fatalf("%s: large input %d dyn not >> small %d dyn", name, large.DynCount, small.DynCount)
		}
	}
}

// TestNeedleIRGolden pins the textual IR of the needle benchmark to a
// committed golden file, protecting both the builder output and the printer
// format from accidental drift. Regenerate with:
//
//	go run ./cmd/irdump -bench needle > internal/prog/testdata/needle.ir.golden
func TestNeedleIRGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/needle.ir.golden")
	if err != nil {
		t.Fatal(err)
	}
	got := ir.Print(Build("needle").Module)
	if got != string(want) {
		t.Fatal("needle IR drifted from the golden file; regenerate it if the change is intentional")
	}
}
