package prog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestStencilMatchesOracle(t *testing.T) {
	b := Build("stencil")
	rng := xrand.New(3)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	// Pin the staircase: a cold run below every threshold and a hot run
	// (large grid, many steps, strong source) crossing all three.
	inputs = append(inputs, []float64{4, 1, 0.05, 1, 1}, []float64{12, 12, 0.2, 100, 5})
	for _, in := range inputs {
		got := runFloats(t, b, in)
		want := oracleStencil(int64(in[0]), int64(in[1]), in[2], in[3], int64(in[4]))
		if !eqFloats(got, want) {
			t.Fatalf("input %v: got %v want %v", in, got, want)
		}
	}
}

func TestSpMVMatchesOracle(t *testing.T) {
	b := Build("spmv")
	rng := xrand.New(4)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	inputs = append(inputs, []float64{8, 1, 1, 0.5, 1}, []float64{48, 6, 10, 1.6, 5})
	for _, in := range inputs {
		got := runFloats(t, b, in)
		want := oracleSpMV(int64(in[0]), int64(in[1]), int64(in[2]), in[3], int64(in[4]))
		if !eqFloats(got, want) {
			t.Fatalf("input %v: got %v want %v", in, got, want)
		}
	}
}

func TestStencilHeatFinite(t *testing.T) {
	b := Build("stencil")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		// Nonnegative dynamics: every printed value (heat, peak, checksum)
		// must be finite and nonnegative.
		for _, v := range out {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVNormsFinite(t *testing.T) {
	b := Build("spmv")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		for _, v := range out {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestNbodyMatchesOracle(t *testing.T) {
	b := Build("nbody")
	rng := xrand.New(5)
	inputs := [][]float64{b.RefInput()}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, b.RandomInput(rng))
	}
	inputs = append(inputs, []float64{4, 1, 0.05, 0.1, 1}, []float64{16, 12, 0.8, 2, 5})
	for _, in := range inputs {
		got := runFloats(t, b, in)
		want := oracleNbody(int64(in[0]), int64(in[1]), in[2], in[3], int64(in[4]))
		if !eqFloats(got, want) {
			t.Fatalf("input %v: got %v want %v", in, got, want)
		}
	}
}

func TestNbodyEnergiesFinite(t *testing.T) {
	b := Build("nbody")
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		in := b.RandomInput(rng)
		out := runFloats(t, b, in)
		for _, v := range out {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}
