package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/prog"
)

// buildChain builds: load -> add -> icmp (the paper's Figure 4 shape:
// ID1562 load, ID1563 add, ID1565 icmp).
func buildChain(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("chain")
	f := m.NewFunc("main", ir.I64, &ir.Param{Name: "k", Ty: ir.I64})
	b := ir.NewBuilder(f)
	buf := b.AllocaN(4)
	b.Store(b.Param(0), buf)
	ld := b.Load(ir.I64, buf)                    // non-boundary
	add := b.Add(ld, ir.I64c(1))                 // non-boundary, data-dependent on ld
	cmp := b.ICmp(ir.OpICmpEQ, add, ir.I64c(10)) // boundary
	b.Ret(b.Select(cmp, ir.I64c(1), ir.I64c(0)))
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefUseEdges(t *testing.T) {
	m := buildChain(t)
	g := BuildDefUse(m)
	instrs := m.Instrs()
	var ld, add, cmp *ir.Instr
	for _, in := range instrs {
		switch in.Op {
		case ir.OpLoad:
			ld = in
		case ir.OpAdd:
			add = in
		case ir.OpICmpEQ:
			cmp = in
		}
	}
	if ld == nil || add == nil || cmp == nil {
		t.Fatal("missing instructions")
	}
	found := false
	for _, s := range g.Succs[ld.ID] {
		if s == add.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("load -> add edge missing")
	}
	found = false
	for _, p := range g.Preds[cmp.ID] {
		if p == add.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("add -> cmp edge missing")
	}
}

func TestPruneSplitsAtBoundary(t *testing.T) {
	// The Figure 4 scenario: load and add share a subgroup; the icmp is a
	// singleton subgroup.
	m := buildChain(t)
	p := Prune(m)
	instrs := m.Instrs()
	var ld, add, cmp *ir.Instr
	for _, in := range instrs {
		switch in.Op {
		case ir.OpLoad:
			ld = in
		case ir.OpAdd:
			add = in
		case ir.OpICmpEQ:
			cmp = in
		}
	}
	if p.GroupOf[ld.ID] != p.GroupOf[add.ID] {
		t.Fatal("load and add should share a pruning subgroup")
	}
	if p.GroupOf[cmp.ID] == p.GroupOf[add.ID] {
		t.Fatal("icmp must be split from its data-dependent predecessors")
	}
	cmpGroup := p.Groups[p.GroupOf[cmp.ID]]
	if len(cmpGroup.Members) != 1 || cmpGroup.Representative != cmp.ID {
		t.Fatalf("icmp group = %+v, want singleton", cmpGroup)
	}
}

func TestPruneCoversAllInstructions(t *testing.T) {
	for _, b := range prog.All() {
		p := Prune(b.Module)
		n := b.Prog.NumInstrs()
		seen := make([]bool, n)
		for gi, g := range p.Groups {
			if len(g.Members) == 0 {
				t.Fatalf("%s: empty group %d", b.Name, gi)
			}
			repInGroup := false
			for _, id := range g.Members {
				if id < 0 || id >= n {
					t.Fatalf("%s: bad member %d", b.Name, id)
				}
				if seen[id] {
					t.Fatalf("%s: instruction %d in two groups", b.Name, id)
				}
				seen[id] = true
				if p.GroupOf[id] != gi {
					t.Fatalf("%s: GroupOf inconsistent for %d", b.Name, id)
				}
				if id == g.Representative {
					repInGroup = true
				}
			}
			if !repInGroup {
				t.Fatalf("%s: representative %d not a member", b.Name, g.Representative)
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("%s: instruction %d unassigned", b.Name, id)
			}
		}
	}
}

func TestPruningRatioRange(t *testing.T) {
	// The paper's Table 4 reports 25-59% pruning across the benchmarks.
	// Ours need not match exactly but must be non-trivial and below 100%.
	total := 0.0
	for _, b := range prog.All() {
		p := Prune(b.Module)
		ratio := p.Ratio(b.Prog.NumInstrs())
		t.Logf("%s: %d instrs -> %d representatives (ratio %.2f%%)",
			b.Name, b.Prog.NumInstrs(), p.NumRepresentatives(), ratio*100)
		if ratio <= 0.05 || ratio >= 0.95 {
			t.Fatalf("%s: pruning ratio %.2f implausible", b.Name, ratio)
		}
		total += ratio
	}
	avg := total / 7
	if avg < 0.15 || avg > 0.85 {
		t.Fatalf("average pruning ratio %.2f out of plausible range", avg)
	}
}

func TestPruneNoBoundariesCoarser(t *testing.T) {
	for _, b := range prog.All() {
		with := Prune(b.Module)
		without := PruneNoBoundaries(b.Module)
		if without.NumRepresentatives() > with.NumRepresentatives() {
			t.Fatalf("%s: boundary splitting should refine groups (%d vs %d)",
				b.Name, with.NumRepresentatives(), without.NumRepresentatives())
		}
	}
}

func TestBoundarySingletons(t *testing.T) {
	for _, b := range prog.All() {
		p := Prune(b.Module)
		for _, in := range b.Module.Instrs() {
			if in.Op.IsBoundary() {
				g := p.Groups[p.GroupOf[in.ID]]
				if len(g.Members) != 1 {
					t.Fatalf("%s: boundary %v in group of %d", b.Name, in.Op, len(g.Members))
				}
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	if Coverage(nil) != 0 {
		t.Fatal("empty coverage")
	}
	if got := Coverage([]int64{1, 0, 5, 0}); got != 0.5 {
		t.Fatalf("coverage = %v", got)
	}
	if got := Coverage([]int64{1, 1}); got != 1 {
		t.Fatalf("full coverage = %v", got)
	}
}

func TestRatioEmptyModule(t *testing.T) {
	p := &Pruning{}
	if p.Ratio(0) != 0 {
		t.Fatal("ratio of empty module")
	}
}
