// Package analysis implements the static program analyses of PEPPA-X:
// the def-use dataflow graph over a module's injectable instructions, the
// FI-space pruning heuristic of §4.2.2 (group instructions along static
// data dependencies; boundary instructions — comparisons, logic operators,
// bit-manipulation and pointer operations — split groups into subgroups,
// because their SDC probability diverges from that of their dataflow
// neighbours), and static-instruction code coverage (the §3.2.2 metric).
package analysis

import (
	"repro/internal/ir"
)

// DefUse is the static def-use graph over injectable instructions: an edge
// connects a value-producing instruction to each value-producing instruction
// consuming its result. Indices are static instruction IDs.
type DefUse struct {
	N     int
	Succs [][]int // def -> uses
	Preds [][]int // use -> defs
}

// BuildDefUse constructs the def-use graph of a finalized module.
func BuildDefUse(m *ir.Module) *DefUse {
	instrs := m.Instrs()
	g := &DefUse{
		N:     len(instrs),
		Succs: make([][]int, len(instrs)),
		Preds: make([][]int, len(instrs)),
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.Injectable() {
					continue
				}
				for _, a := range in.Args {
					if def, ok := a.(*ir.Instr); ok && def.Injectable() {
						g.Succs[def.ID] = append(g.Succs[def.ID], in.ID)
						g.Preds[in.ID] = append(g.Preds[in.ID], def.ID)
					}
				}
			}
		}
	}
	return g
}

// Group is one pruning subgroup: instructions expected to share similar SDC
// probabilities. Representative is the member selected for fault injection;
// its measured SDC probability is assigned to every member (§4.2.3).
type Group struct {
	Members        []int
	Representative int
}

// Pruning is the result of the FI-space pruning analysis.
type Pruning struct {
	Groups []Group
	// GroupOf maps each static instruction ID to its index in Groups.
	GroupOf []int
}

// NumRepresentatives returns the pruned FI-space size.
func (p *Pruning) NumRepresentatives() int { return len(p.Groups) }

// Ratio returns the pruning ratio — the fraction of instructions removed
// from the FI space, as reported in Table 4.
func (p *Pruning) Ratio(numInstrs int) float64 {
	if numInstrs == 0 {
		return 0
	}
	return float64(numInstrs-len(p.Groups)) / float64(numInstrs)
}

// Representatives returns the representative instruction IDs.
func (p *Pruning) Representatives() []int {
	out := make([]int, len(p.Groups))
	for i, g := range p.Groups {
		out[i] = g.Representative
	}
	return out
}

// Prune groups a module's injectable instructions by static data dependency
// and splits the groups at boundary instructions, following §4.2.2:
//
//   - Non-boundary instructions connected by def-use edges (not passing
//     through a boundary instruction) form one subgroup — errors propagate
//     directly through immediate data dependencies, so their SDC
//     probabilities are similar.
//   - Each boundary instruction (CMP, AND/OR/XOR, TRUNC/SEXT/ZEXT/shifts,
//     GEP/ALLOCA) forms its own singleton subgroup, like the ID1565 CMP in
//     the paper's Figure 4 example.
//
// The first member of each subgroup (lowest ID) is its representative.
func Prune(m *ir.Module) *Pruning {
	instrs := m.Instrs()
	g := BuildDefUse(m)
	n := len(instrs)

	p := &Pruning{GroupOf: make([]int, n)}
	for i := range p.GroupOf {
		p.GroupOf[i] = -1
	}

	boundary := make([]bool, n)
	for id, in := range instrs {
		boundary[id] = in.Op.IsBoundary()
	}

	// Non-boundary connected components via undirected def-use edges that
	// avoid boundary nodes.
	for id := 0; id < n; id++ {
		if boundary[id] || p.GroupOf[id] >= 0 {
			continue
		}
		gi := len(p.Groups)
		var members []int
		stack := []int{id}
		p.GroupOf[id] = gi
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, cur)
			for _, nb := range g.Succs[cur] {
				if !boundary[nb] && p.GroupOf[nb] < 0 {
					p.GroupOf[nb] = gi
					stack = append(stack, nb)
				}
			}
			for _, nb := range g.Preds[cur] {
				if !boundary[nb] && p.GroupOf[nb] < 0 {
					p.GroupOf[nb] = gi
					stack = append(stack, nb)
				}
			}
		}
		// Deterministic representative: lowest ID in the component.
		rep := members[0]
		for _, mID := range members {
			if mID < rep {
				rep = mID
			}
		}
		p.Groups = append(p.Groups, Group{Members: members, Representative: rep})
	}

	// Boundary singletons.
	for id := 0; id < n; id++ {
		if boundary[id] {
			p.GroupOf[id] = len(p.Groups)
			p.Groups = append(p.Groups, Group{Members: []int{id}, Representative: id})
		}
	}
	return p
}

// PruneNoBoundaries is the ablation variant that groups purely by static
// data dependency without boundary splitting — used by the pruning-boundary
// ablation bench to show why the boundary classes matter.
func PruneNoBoundaries(m *ir.Module) *Pruning {
	instrs := m.Instrs()
	g := BuildDefUse(m)
	n := len(instrs)
	p := &Pruning{GroupOf: make([]int, n)}
	for i := range p.GroupOf {
		p.GroupOf[i] = -1
	}
	for id := 0; id < n; id++ {
		if p.GroupOf[id] >= 0 {
			continue
		}
		gi := len(p.Groups)
		var members []int
		stack := []int{id}
		p.GroupOf[id] = gi
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, cur)
			for _, nb := range g.Succs[cur] {
				if p.GroupOf[nb] < 0 {
					p.GroupOf[nb] = gi
					stack = append(stack, nb)
				}
			}
			for _, nb := range g.Preds[cur] {
				if p.GroupOf[nb] < 0 {
					p.GroupOf[nb] = gi
					stack = append(stack, nb)
				}
			}
		}
		rep := members[0]
		for _, mID := range members {
			if mID < rep {
				rep = mID
			}
		}
		p.Groups = append(p.Groups, Group{Members: members, Representative: rep})
	}
	return p
}

// Coverage returns the static-instruction code coverage of a profiled run:
// the fraction of injectable static instructions executed at least once.
func Coverage(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return float64(n) / float64(len(counts))
}
