// This file is the service half of the telemetry layer: Prometheus text
// exposition of a Recorder's counters and gauges, plus the opt-in embedded
// HTTP server behind the -metrics-addr flags. The JSONL trace stays the
// deterministic record of a run, while /metrics serves the same counters
// and gauges the end-of-run Summary prints — including schedule-dependent
// wall data — live, for scrapers and dashboards.

package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricNamePrefix is prepended to every exported metric name so the
// reproduction's metrics namespace cleanly in a shared Prometheus.
const MetricNamePrefix = "peppax_"

// promMetric is one exposition sample: a sanitized metric name, an optional
// {label="value"} block carried verbatim from the recorder key, the rendered
// sample value and the metric type line to advertise.
type promMetric struct {
	name   string
	labels string
	value  string
	typ    string
}

// PromText renders every counter and gauge in the Prometheus text exposition
// format (version 0.0.4): samples sorted by metric name (then label block),
// one "# TYPE" line per metric name, names sanitized to [a-zA-Z0-9_] and
// prefixed with MetricNamePrefix. Counters export as counter, int64 and
// float gauges as gauge. A recorder key may carry a literal label block —
// `heat.instr{id="3"}` exports as `peppax_heat_instr{id="3"}` — which is how
// the live heat map reaches the endpoint. Safe to call at any time,
// including while the run is in flight and after Close.
func (r *Recorder) PromText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]promMetric, 0, len(r.counters)+len(r.gauges)+len(r.gaugesF))
	for k, v := range r.counters {
		metrics = append(metrics, newPromMetric(k, strconv.FormatInt(v, 10), "counter"))
	}
	for k, v := range r.gauges {
		metrics = append(metrics, newPromMetric(k, strconv.FormatInt(v, 10), "gauge"))
	}
	for k, v := range r.gaugesF {
		metrics = append(metrics, newPromMetric(k, strconv.FormatFloat(v, 'g', -1, 64), "gauge"))
	}
	r.mu.Unlock()
	sort.Slice(metrics, func(a, b int) bool {
		if metrics[a].name != metrics[b].name {
			return metrics[a].name < metrics[b].name
		}
		return metrics[a].labels < metrics[b].labels
	})
	var sb strings.Builder
	prev := ""
	for _, m := range metrics {
		if m.name != prev {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", m.name, m.typ)
			prev = m.name
		}
		sb.WriteString(m.name)
		sb.WriteString(m.labels)
		sb.WriteByte(' ')
		sb.WriteString(m.value)
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// newPromMetric splits an optional trailing {label} block off the recorder
// key and sanitizes the name part.
func newPromMetric(key, value, typ string) promMetric {
	name, labels := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		name, labels = key[:i], key[i:]
	}
	return promMetric{name: sanitizeMetricName(name), labels: labels, value: value, typ: typ}
}

// sanitizeMetricName maps a dotted recorder key to a valid Prometheus metric
// name: every byte outside [a-zA-Z0-9_] becomes '_', and the result carries
// the MetricNamePrefix (which also guarantees a non-digit first character).
func sanitizeMetricName(key string) string {
	var sb strings.Builder
	sb.Grow(len(MetricNamePrefix) + len(key))
	sb.WriteString(MetricNamePrefix)
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Handler returns an http.Handler serving the Prometheus exposition — the
// /metrics route of the embedded server, usable standalone under any mux.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.PromText(w)
	})
}

// MetricsServer is the embedded observability endpoint: /metrics with the
// Prometheus exposition and /healthz for liveness probes.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// ServeMetrics starts an HTTP server on addr (e.g. ":9464" or
// "127.0.0.1:0") exposing /metrics and /healthz and returns once it is
// listening. The caller owns the returned server and should Close it when
// the run ends; requests after Recorder.Close still serve the final
// counter/gauge state.
func (r *Recorder) ServeMetrics(addr string) (*MetricsServer, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: ServeMetrics on a nil Recorder")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", time.Since(start).Seconds())
	})
	ms := &MetricsServer{
		srv:  &http.Server{Handler: mux},
		addr: lis.Addr().String(),
	}
	go func() { _ = ms.srv.Serve(lis) }()
	return ms, nil
}

// Addr returns the address the server is listening on (useful with ":0").
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.addr
}

// Close stops the server and releases its listener.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	return m.srv.Close()
}
