package telemetry

// Shutdown-signal plumbing shared by the CLIs and the service daemon. A
// process that buffers telemetry (Recorder) or serves /metrics
// (MetricsServer) must flush on SIGINT/SIGTERM or the trace tail — sorted
// stream lines are only written by Recorder.Close — is silently dropped.

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// OnShutdownSignal installs a SIGINT/SIGTERM handler that runs cleanup once,
// on the first signal received, in its own goroutine. It returns a stop
// function that uninstalls the handler and releases the goroutine; stop is
// idempotent and safe to call whether or not a signal fired. Cleanup is
// responsible for exiting (or not): a CLI typically flushes its Recorder,
// closes its MetricsServer and calls os.Exit(SignalExitCode(sig)), while a
// server instead starts a graceful drain.
func OnShutdownSignal(cleanup func(sig os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			cleanup(sig)
		case <-done:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}

// SignalExitCode is the conventional exit status for a death-by-signal:
// 128 plus the signal number (130 for SIGINT, 143 for SIGTERM).
func SignalExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}
