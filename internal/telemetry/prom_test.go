package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promNameRe / promLineRe encode the Prometheus text exposition grammar
// (version 0.0.4) for the subset PromText emits: "# TYPE" comments and
// sample lines with an optional label block.
var (
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (\S+)$`)
)

// validatePromText checks text against the exposition grammar: every line is
// a well-formed TYPE comment or sample, every sample's metric name was
// declared by a preceding TYPE line, no name is declared twice, and the
// sample value parses as a float.
func validatePromText(t *testing.T, text string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !promNameRe.MatchString(parts[2]) ||
				(parts[3] != "counter" && parts[3] != "gauge") {
				t.Fatalf("line %d: bad TYPE comment: %s", i, line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %s", i, line)
		}
		if _, ok := types[m[1]]; !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", i, m[1])
		}
		if _, err := strconv.ParseFloat(m[4], 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", i, m[4], err)
		}
	}
	return types
}

func TestPromTextFormat(t *testing.T) {
	r := New(Options{})
	r.Count("fi.trials", 1000)
	r.Count("pool.drain.ns", 123456)
	r.Gauge("pool.workers.max", 8)
	r.GaugeF("best.sdc", 0.4375)
	r.GaugeF(`heat.instr{id="3"}`, 0.25)
	r.GaugeF(`heat.instr{id="17"}`, 0.125)

	var sb strings.Builder
	if err := r.PromText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	types := validatePromText(t, text)

	wantTypes := map[string]string{
		"peppax_fi_trials":        "counter",
		"peppax_pool_drain_ns":    "counter",
		"peppax_pool_workers_max": "gauge",
		"peppax_best_sdc":         "gauge",
		"peppax_heat_instr":       "gauge",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Fatalf("metric %s: type %q, want %q\n%s", name, types[name], typ, text)
		}
	}
	for _, want := range []string{
		"peppax_fi_trials 1000\n",
		`peppax_heat_instr{id="17"} 0.125` + "\n",
		`peppax_heat_instr{id="3"} 0.25` + "\n",
		"peppax_best_sdc 0.4375\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Output is sorted, so rendering twice gives identical bytes.
	var sb2 strings.Builder
	if err := r.PromText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Fatal("PromText not deterministic across calls")
	}
}

func TestPromTextSanitizesNames(t *testing.T) {
	r := New(Options{})
	r.Count("phase.small-input.ns", 1)
	var sb strings.Builder
	if err := r.PromText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "peppax_phase_small_input_ns 1") {
		t.Fatalf("dots/dashes not sanitized:\n%s", sb.String())
	}
	validatePromText(t, sb.String())
}

func TestPromTextNilAndEmpty(t *testing.T) {
	var nilRec *Recorder
	var sb strings.Builder
	if err := nilRec.PromText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil recorder: err=%v out=%q", err, sb.String())
	}
	if err := New(Options{}).PromText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("empty recorder: err=%v out=%q", err, sb.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := New(Options{})
	r.Count("ga.evals", 64)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	body := readAll(t, resp)
	validatePromText(t, body)
	if !strings.Contains(body, "peppax_ga_evals 64") {
		t.Fatalf("handler body missing counter:\n%s", body)
	}
}

func TestServeMetricsEndpoints(t *testing.T) {
	r := New(Options{})
	r.Count("c", 1)
	ms, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, "uptime_seconds") {
		t.Fatalf("healthz body: %s", health)
	}

	resp, err = http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	resp.Body.Close()
	validatePromText(t, metrics)
	if !strings.Contains(metrics, "peppax_c 1") {
		t.Fatalf("metrics body: %s", metrics)
	}

	// The endpoint keeps serving the final state after the recorder closes.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	after := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(after, "peppax_c 1") {
		t.Fatalf("post-Close metrics body: %s", after)
	}

	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestServeMetricsNilAndBadAddr(t *testing.T) {
	var nilRec *Recorder
	if _, err := nilRec.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Fatal("nil recorder should refuse to serve")
	}
	if _, err := New(Options{}).ServeMetrics("256.0.0.1:bad"); err == nil {
		t.Fatal("bad address should fail")
	}
	var nilSrv *MetricsServer
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil MetricsServer methods should no-op")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
