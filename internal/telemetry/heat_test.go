package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHeatTopKSelection(t *testing.T) {
	scores := []float64{0.5, 1.0, 0.0, 0.25}
	counts := []int64{10, 40, 50, 80}
	// heat: 0 → 0.05, 1 → 0.4, 2 → 0 (score 0), 3 → 0.2
	got := HeatTopK(scores, counts, 100, 2)
	want := []HeatEntry{{ID: 1, Heat: 0.4}, {ID: 3, Heat: 0.2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHeatTopKTiesBreakByID(t *testing.T) {
	// Equal heat everywhere: the selection must be the lowest ids, in order.
	counts := []int64{5, 5, 5, 5, 5}
	got := HeatTopK(nil, counts, 25, 3)
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.ID != i || e.Heat != 0.2 {
			t.Fatalf("entry %d = %v, want {ID:%d Heat:0.2}", i, e, i)
		}
	}
}

func TestHeatTopKNilScoresAndDefaults(t *testing.T) {
	counts := make([]int64, 20)
	for i := range counts {
		counts[i] = int64(i + 1)
	}
	// k <= 0 selects DefaultHeatTopK entries.
	if got := HeatTopK(nil, counts, 210, 0); len(got) != DefaultHeatTopK {
		t.Fatalf("k=0 selected %d entries, want %d", len(got), DefaultHeatTopK)
	}
	// Degenerate inputs give nil.
	if HeatTopK(nil, counts, 0, 5) != nil {
		t.Fatal("dynTotal=0 should yield nil")
	}
	if HeatTopK(nil, nil, 100, 5) != nil {
		t.Fatal("no counts should yield nil")
	}
	if HeatTopK(make([]float64, 3), []int64{1, 2, 3}, 6, 5) != nil {
		t.Fatal("all-zero scores should yield nil")
	}
}

func TestEmitHeatEventAndGauges(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	s := r.Stream("search/x")
	s.Advance(100)
	EmitHeatTopK(s, "heat.topk", []Field{F("gen", 7)},
		[]float64{1.0, 0.5}, []int64{20, 80}, 100, 2)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines(&buf)
	var ev map[string]any
	if err := json.Unmarshal([]byte(got[len(got)-1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["ev"] != "heat.topk" || ev["gen"] != float64(7) || ev["k"] != float64(2) {
		t.Fatalf("bad heat event: %v", ev)
	}
	// heat: 0 → 0.2, 1 → 0.4; hottest first.
	ids := ev["ids"].([]any)
	heat := ev["heat"].([]any)
	if len(ids) != 2 || ids[0] != float64(1) || ids[1] != float64(0) {
		t.Fatalf("ids = %v", ids)
	}
	if heat[0] != float64(0.4) || heat[1] != float64(0.2) {
		t.Fatalf("heat = %v", heat)
	}
	// The top-k is mirrored into float gauges for the /metrics endpoint.
	if v, ok := r.FloatGauge(`heat.instr{id="1"}`); !ok || v != 0.4 {
		t.Fatalf("gauge id=1: %v %v", v, ok)
	}
	var sb strings.Builder
	if err := r.PromText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `peppax_heat_instr{id="1"} 0.4`) {
		t.Fatalf("exposition missing heat gauge:\n%s", sb.String())
	}
}

func TestSetHeatGaugesReplacesStaleEntries(t *testing.T) {
	r := New(Options{})
	r.SetHeatGauges([]HeatEntry{{ID: 1, Heat: 0.5}, {ID: 2, Heat: 0.25}})
	r.SetHeatGauges([]HeatEntry{{ID: 3, Heat: 0.75}})
	if _, ok := r.FloatGauge(`heat.instr{id="1"}`); ok {
		t.Fatal("stale heat gauge id=1 survived")
	}
	if v, ok := r.FloatGauge(`heat.instr{id="3"}`); !ok || v != 0.75 {
		t.Fatalf("gauge id=3: %v %v", v, ok)
	}
	// Non-heat float gauges are untouched by the replacement.
	r.GaugeF("best.sdc", 0.5)
	r.SetHeatGauges(nil)
	if _, ok := r.FloatGauge("best.sdc"); !ok {
		t.Fatal("unrelated float gauge deleted")
	}
	if _, ok := r.FloatGauge(`heat.instr{id="3"}`); ok {
		t.Fatal("empty update should clear the heat map")
	}
}

func TestEmitHeatNoOps(t *testing.T) {
	// Nil stream and empty top-k must not panic or emit.
	EmitHeat(nil, "heat.topk", nil, []HeatEntry{{ID: 1, Heat: 1}})
	EmitHeatTopK(nil, "heat.topk", nil, nil, []int64{1}, 1, 1)
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	EmitHeat(r.Stream("s"), "heat.topk", nil, nil)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(lines(&buf)) != 1 { // meta line only
		t.Fatalf("empty top-k emitted an event: %q", buf.String())
	}
	var nilRec *Recorder
	nilRec.SetHeatGauges([]HeatEntry{{ID: 1, Heat: 1}})
}
