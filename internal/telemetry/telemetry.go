// Package telemetry is the repository's deterministic observability layer:
// counters, gauges and phase timers driven by an injectable clock, plus a
// JSONL event sink. It makes the runtime cost structure of a search or FI
// campaign visible — where the dynamic-instruction budget goes (the Table 5
// / Table 6 / Figure 8 cost model), how the GA progresses per generation,
// how the worker pool is utilized — without breaking the repo-wide
// determinism contract.
//
// # Clock model
//
// The default clock is a virtual "cost clock": every event stream owns an
// int64 tick counter advanced explicitly (Stream.Advance) with the dynamic
// instructions the traced computation spent. Dynamic-instruction totals are
// schedule-independent (they are integer sums folded at serial points), so
// timestamps — and therefore whole traces — are byte-identical for any
// worker count. Wall-clock timestamps are opt-in (Options.WallClock) and
// trade that determinism for real time.
//
// # Determinism rule
//
// Trace events may carry only schedule-independent data: fitness values,
// outcome tallies, dynamic-instruction costs, deterministic RNG-draw counts.
// Schedule-dependent measurements (wall-clock nanoseconds, per-worker task
// tallies, queue drain times) go to counters and gauges, which appear in
// the end-of-run Summary but never in the trace. Each Stream must be fed by
// one serially-ordered computation; concurrent computations write to
// distinct streams, and Close emits streams sorted by key, so the file
// bytes do not depend on goroutine interleaving.
//
// # Event schema
//
// One JSON object per line:
//
//	{"t":<ticks>,"s":"<stream>","ev":"<event>",<fields...>}
//
// "t" is the stream clock at emission (cost ticks by default), "s" the
// stream key, "ev" the event name; remaining fields are event-specific and
// appear in the order the emitter listed them.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Field is one key/value pair of an event.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Options configures a Recorder.
type Options struct {
	// Sink receives the JSONL trace on Close. Nil disables the trace;
	// counters, gauges and phase timers still work (for Summary).
	Sink io.Writer
	// WallClock switches timestamps from the deterministic per-stream cost
	// clock to nanoseconds since the Recorder was created. Wall-clock
	// traces are NOT reproducible across runs or worker counts.
	WallClock bool
}

// Recorder collects events, counters and gauges. All methods are safe for
// concurrent use and no-ops on a nil receiver, so call sites need no nil
// checks.
type Recorder struct {
	opts  Options
	start time.Time

	mu       sync.Mutex
	streams  map[string]*Stream
	counters map[string]int64
	gauges   map[string]int64
	gaugesF  map[string]float64
	closed   bool
}

// New builds a Recorder.
func New(opts Options) *Recorder {
	return &Recorder{
		opts:     opts,
		start:    time.Now(),
		streams:  make(map[string]*Stream),
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		gaugesF:  make(map[string]float64),
	}
}

// Stream returns (creating once) the event stream for key. A stream must be
// fed by a single serially-ordered computation; concurrent work belongs in
// separate streams. Returns nil on a nil Recorder. Streams requested after
// Close start closed: their events are dropped and counted, never buffered.
func (r *Recorder) Stream(key string) *Stream {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.streams[key]
	if !ok {
		s = &Stream{r: r, key: key, closed: r.closed}
		r.streams[key] = s
	}
	return s
}

// Count adds delta to a named counter (metrics only, never in the trace).
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets a named gauge to v.
func (r *Recorder) Gauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises a named gauge to v if v is larger (or the gauge is unset).
func (r *Recorder) MaxGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// GaugeF sets a named float gauge to v. Float gauges live beside the int64
// gauges in Summary and the Prometheus exposition; they exist for metrics
// whose natural unit is fractional (SDC heat, probabilities, ratios).
func (r *Recorder) GaugeF(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugesF[name] = v
	r.mu.Unlock()
}

// Counter reads a counter's current value (0 when unset).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// FloatGauge reads a float gauge's current value (0, false when unset).
func (r *Recorder) FloatGauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugesF[name]
	return v, ok
}

// Summary renders every counter and gauge, sorted by name — the -metrics
// end-of-run report. Unlike the trace, it may contain schedule-dependent
// values (wall times, per-worker tallies).
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sb strings.Builder
	sb.WriteString("telemetry summary\n")
	writeSection := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, "%s:\n", title)
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %-32s %d\n", k, m[k])
		}
	}
	writeSection("counters", r.counters)
	writeSection("gauges", r.gauges)
	if len(r.gaugesF) > 0 {
		keys := make([]string, 0, len(r.gaugesF))
		for k := range r.gaugesF {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("float gauges:\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %-32s %g\n", k, r.gaugesF[k])
		}
	}
	// Streams are frozen by Close, so this count always agrees with what
	// Close flushed (late events are dropped, not buffered).
	events := 0
	for _, s := range r.streams {
		s.mu.Lock()
		events += len(s.lines)
		s.mu.Unlock()
	}
	fmt.Fprintf(&sb, "trace: %d streams, %d events\n", len(r.streams), events)
	return sb.String()
}

// Close flushes the trace to the sink: a meta line, then every stream's
// events sorted by stream key (emission order within a stream). Close is
// idempotent; only the first call writes. Closing freezes every stream —
// events emitted afterwards are dropped and tallied in the
// "telemetry.dropped_events" counter instead of accumulating invisibly in
// buffers the sink will never see, so Summary's event count always matches
// the flushed trace.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	keys := make([]string, 0, len(r.streams))
	for k := range r.streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	clock := "cost"
	if r.opts.WallClock {
		clock = "wall"
	}
	var sb strings.Builder
	// Wall-clock traces carry schedule-dependent timestamps, so the meta
	// line marks them non-reproducible for downstream diffing tools.
	fmt.Fprintf(&sb, "{\"ev\":\"trace.meta\",\"clock\":%s,\"reproducible\":%v,\"streams\":%d}\n",
		jsonString(clock), !r.opts.WallClock, len(keys))
	for _, k := range keys {
		s := r.streams[k]
		s.mu.Lock()
		s.closed = true // an Emit either lands before this or is dropped
		for _, line := range s.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		s.mu.Unlock()
	}
	if r.opts.Sink == nil {
		return nil
	}
	_, err := io.WriteString(r.opts.Sink, sb.String())
	return err
}

// Stream is one serially-ordered event sequence with its own cost clock.
type Stream struct {
	r   *Recorder
	key string

	mu     sync.Mutex
	ticks  int64
	lines  []string
	closed bool
}

// Advance moves the stream's cost clock forward by n ticks (dynamic
// instructions by convention). Ignored in wall-clock mode and on nil.
func (s *Stream) Advance(n int64) {
	if s == nil || s.r.opts.WallClock {
		return
	}
	s.mu.Lock()
	s.ticks += n
	s.mu.Unlock()
}

// Now returns the stream's current timestamp: cost ticks, or nanoseconds
// since the Recorder started in wall-clock mode.
func (s *Stream) Now() int64 {
	if s == nil {
		return 0
	}
	if s.r.opts.WallClock {
		return time.Since(s.r.start).Nanoseconds()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Emit appends one event to the stream, timestamped with the stream clock.
// Fields keep their listed order. After the Recorder is closed the event is
// dropped and counted in "telemetry.dropped_events" — buffering it would
// make Summary disagree with the trace Close already flushed.
func (s *Stream) Emit(ev string, fields ...Field) {
	if s == nil {
		return
	}
	t := s.Now()
	var sb strings.Builder
	fmt.Fprintf(&sb, "{\"t\":%d,\"s\":%s,\"ev\":%s", t, jsonString(s.key), jsonString(ev))
	for _, f := range fields {
		sb.WriteByte(',')
		sb.WriteString(jsonString(f.Key))
		sb.WriteByte(':')
		sb.WriteString(jsonValue(f.Val))
	}
	sb.WriteByte('}')
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.r.Count("telemetry.dropped_events", 1)
		return
	}
	s.lines = append(s.lines, sb.String())
	s.mu.Unlock()
}

// Count delegates to the parent Recorder's counters (metrics only).
func (s *Stream) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.r.Count(name, delta)
}

// Gauge delegates to the parent Recorder's gauges (metrics only).
func (s *Stream) Gauge(name string, v int64) {
	if s == nil {
		return
	}
	s.r.Gauge(name, v)
}

// GaugeF delegates to the parent Recorder's float gauges (metrics only) —
// for fractional readings like composed CI widths and SDC estimates.
func (s *Stream) GaugeF(name string, v float64) {
	if s == nil {
		return
	}
	s.r.GaugeF(name, v)
}

// Phase starts a phase timer and returns its closer. The closer emits a
// "phase" event carrying the deterministic cost-clock span (start tick and
// ticks elapsed) and accumulates the wall-clock nanoseconds into the
// "phase.<name>.ns" counter for the metrics summary.
func (s *Stream) Phase(name string) func() {
	if s == nil {
		return func() {}
	}
	startTick := s.Now()
	startWall := time.Now()
	return func() {
		end := s.Now()
		s.Emit("phase", F("name", name), F("start", startTick), F("ticks", end-startTick))
		s.Count("phase."+name+".ns", time.Since(startWall).Nanoseconds())
	}
}

// PoolObserver adapts a Recorder into the worker-pool drain callback shape
// (parallel.SetObserver): it tallies batches, tasks, drain time and
// per-worker imbalance into pool.* counters and gauges. All of it is
// schedule-dependent, so none of it enters the trace.
func PoolObserver(r *Recorder) func(workers, items int, tasksPerWorker []int, elapsed time.Duration) {
	return func(workers, items int, tasksPerWorker []int, elapsed time.Duration) {
		r.Count("pool.batches", 1)
		r.Count("pool.tasks", int64(items))
		r.Count("pool.drain.ns", elapsed.Nanoseconds())
		r.MaxGauge("pool.workers.max", int64(workers))
		if len(tasksPerWorker) > 0 {
			lo, hi := tasksPerWorker[0], tasksPerWorker[0]
			for _, c := range tasksPerWorker[1:] {
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			r.MaxGauge("pool.batch.imbalance.max", int64(hi-lo))
		}
	}
}

// jsonString renders s as a JSON string.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for strings
		return strconv.Quote(s)
	}
	return string(b)
}

// jsonValue renders a field value deterministically. Floats use the
// shortest round-trip decimal form; NaN and infinities (not representable
// in JSON) become strings. Slices render as JSON arrays (heat events carry
// parallel id/heat vectors).
func jsonValue(v any) string {
	switch x := v.(type) {
	case string:
		return jsonString(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return jsonString(strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case []int:
		return jsonArray(len(x), func(i int) string { return jsonValue(x[i]) })
	case []int64:
		return jsonArray(len(x), func(i int) string { return jsonValue(x[i]) })
	case []float64:
		return jsonArray(len(x), func(i int) string { return jsonValue(x[i]) })
	case []string:
		return jsonArray(len(x), func(i int) string { return jsonString(x[i]) })
	default:
		return jsonString(fmt.Sprintf("%v", x))
	}
}

// jsonArray renders n elements as a JSON array.
func jsonArray(n int, elem func(int) string) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(elem(i))
	}
	sb.WriteByte(']')
	return sb.String()
}
