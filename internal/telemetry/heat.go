// This file computes and emits per-instruction SDC heat — the live
// Figure 2-style heat map. Heat of static instruction i is
// Scores[i] · (InstrCounts[i] / DynCount): its normalized SDC score weighted
// by the fraction of the run's dynamic instructions it accounts for, i.e.
// the per-instruction term of the §4.2.5 fitness sum. Both factors are
// schedule-independent, so heat events obey the trace determinism rule; the
// running top-k is additionally mirrored into heat.instr{id="…"} float
// gauges, which the /metrics endpoint exports as peppax_heat_instr{id="…"}.

package telemetry

import (
	"sort"
	"strconv"
	"strings"
)

// DefaultHeatTopK is the heat-event entry count used when a HeatTopK knob
// is left at its zero value.
const DefaultHeatTopK = 10

// HeatEntry is one instruction of a heat top-k: a static instruction id and
// its heat value.
type HeatEntry struct {
	ID   int
	Heat float64
}

// HeatTopK returns the k hottest static instructions by
// scores[i]·(counts[i]/dynTotal), hottest first, with ties broken by
// ascending id so the selection — and therefore every trace that carries it
// — is deterministic. A nil scores vector means "score every instruction
// 1.0", reducing heat to the dynamic-execution fraction (the form the
// score-free baseline emits). Zero-heat instructions are omitted; k <= 0
// selects DefaultHeatTopK entries; a nil result means no instruction has
// positive heat or the inputs are degenerate (dynTotal <= 0).
func HeatTopK(scores []float64, counts []int64, dynTotal int64, k int) []HeatEntry {
	if k <= 0 {
		k = DefaultHeatTopK
	}
	if dynTotal <= 0 || len(counts) == 0 {
		return nil
	}
	total := float64(dynTotal)
	entries := make([]HeatEntry, 0, len(counts))
	for id, n := range counts {
		if n <= 0 {
			continue
		}
		h := float64(n) / total
		if scores != nil {
			h *= scores[id]
		}
		if h > 0 {
			entries = append(entries, HeatEntry{ID: id, Heat: h})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Heat != entries[b].Heat {
			return entries[a].Heat > entries[b].Heat
		}
		return entries[a].ID < entries[b].ID
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	if len(entries) == 0 {
		return nil
	}
	return entries
}

// EmitHeat appends one heat event to the stream — ctx fields first, then
// "k" and the parallel "ids"/"heat" vectors, hottest first — and mirrors
// the entries into the recorder's heat gauges for the /metrics endpoint.
// No-op on a nil stream or an empty top-k.
func EmitHeat(s *Stream, event string, ctx []Field, entries []HeatEntry) {
	if s == nil || len(entries) == 0 {
		return
	}
	ids := make([]int, len(entries))
	heat := make([]float64, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
		heat[i] = e.Heat
	}
	fields := make([]Field, 0, len(ctx)+3)
	fields = append(fields, ctx...)
	fields = append(fields, F("k", len(entries)), F("ids", ids), F("heat", heat))
	s.Emit(event, fields...)
	s.r.SetHeatGauges(entries)
}

// EmitHeatTopK is HeatTopK + EmitHeat in one call: compute the top-k heat
// of a profiled execution and emit it. The stream nil-check comes first, so
// untraced runs pay nothing.
func EmitHeatTopK(s *Stream, event string, ctx []Field, scores []float64, counts []int64, dynTotal int64, k int) {
	if s == nil {
		return
	}
	EmitHeat(s, event, ctx, HeatTopK(scores, counts, dynTotal, k))
}

// heatGaugePrefix keys the mirrored heat gauges; the {id="…"} label block
// passes through the Prometheus exposition verbatim.
const heatGaugePrefix = "heat.instr{"

// SetHeatGauges replaces the recorder's heat gauges with the given top-k:
// stale instruction ids are deleted so the endpoint always shows exactly
// the current heat map, never a union of past ones.
func (r *Recorder) SetHeatGauges(entries []HeatEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for k := range r.gaugesF {
		if strings.HasPrefix(k, heatGaugePrefix) {
			delete(r.gaugesF, k)
		}
	}
	for _, e := range entries {
		r.gaugesF[heatGaugePrefix+"id=\""+strconv.Itoa(e.ID)+"\"}"] = e.Heat
	}
	r.mu.Unlock()
}
