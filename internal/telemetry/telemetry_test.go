package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func lines(buf *bytes.Buffer) []string {
	out := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

func TestEmitProducesValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	s := r.Stream("a")
	s.Emit("ev1", F("i", 7), F("f", 0.25), F("str", "x\"y\n"), F("b", true))
	s.Advance(42)
	s.Emit("ev2", F("neg", int64(-3)))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines(&buf)
	if len(got) != 3 { // meta + 2 events
		t.Fatalf("got %d lines: %q", len(got), got)
	}
	for i, line := range got {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d not valid JSON: %s", i, line)
		}
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(got[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["t"] != float64(42) || ev["s"] != "a" || ev["ev"] != "ev2" || ev["neg"] != float64(-3) {
		t.Fatalf("unexpected event: %v", ev)
	}
}

func TestCostClockPerStream(t *testing.T) {
	r := New(Options{})
	a, b := r.Stream("a"), r.Stream("b")
	a.Advance(10)
	if a.Now() != 10 || b.Now() != 0 {
		t.Fatalf("stream clocks not independent: a=%d b=%d", a.Now(), b.Now())
	}
	if r.Stream("a") != a {
		t.Fatal("Stream not memoized per key")
	}
}

// Streams emitted from concurrent goroutines must serialize into identical
// bytes regardless of interleaving: Close orders streams by key and each
// stream is internally ordered by its single writer.
func TestCloseOrdersStreamsDeterministically(t *testing.T) {
	trace := func() string {
		var buf bytes.Buffer
		r := New(Options{Sink: &buf})
		var wg sync.WaitGroup
		for _, key := range []string{"z", "m", "a"} {
			wg.Add(1)
			go func(key string) {
				defer wg.Done()
				s := r.Stream(key)
				for i := 0; i < 5; i++ {
					s.Emit("tick", F("i", i))
					s.Advance(int64(i))
				}
			}(key)
		}
		wg.Wait()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := trace()
	for i := 0; i < 10; i++ {
		if got := trace(); got != first {
			t.Fatalf("trace differs across runs:\n%s\nvs\n%s", got, first)
		}
	}
	if !strings.Contains(first, `"clock":"cost"`) {
		t.Fatalf("meta line missing clock: %s", first)
	}
}

func TestPhaseEmitsCostSpan(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	s := r.Stream("search")
	s.Advance(5)
	end := s.Phase("sensitivity")
	s.Advance(100)
	end()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines(&buf)
	var ev map[string]any
	if err := json.Unmarshal([]byte(got[len(got)-1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["ev"] != "phase" || ev["name"] != "sensitivity" ||
		ev["start"] != float64(5) || ev["ticks"] != float64(100) {
		t.Fatalf("bad phase event: %v", ev)
	}
	if r.Counter("phase.sensitivity.ns") <= 0 {
		t.Fatal("phase wall-time counter not accumulated")
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New(Options{})
	r.Count("c", 2)
	r.Count("c", 3)
	r.Stream("s").Count("c", 5)
	if got := r.Counter("c"); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	r.MaxGauge("g", 4)
	r.MaxGauge("g", 2)
	r.Gauge("set", -1)
	sum := r.Summary()
	for _, want := range []string{"c", "10", "g", "4", "set", "-1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestNilRecorderAndStreamNoOp(t *testing.T) {
	var r *Recorder
	s := r.Stream("x")
	if s != nil {
		t.Fatal("nil recorder should return nil stream")
	}
	// None of these may panic.
	r.Count("c", 1)
	r.Gauge("g", 1)
	r.MaxGauge("g", 1)
	if r.Counter("c") != 0 {
		t.Fatal("nil counter read")
	}
	if r.Summary() != "" {
		t.Fatal("nil summary")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	s.Emit("ev")
	s.Advance(1)
	s.Count("c", 1)
	if s.Now() != 0 {
		t.Fatal("nil stream Now")
	}
	s.Phase("p")()
}

func TestWallClockMode(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf, WallClock: true})
	s := r.Stream("w")
	s.Advance(1000) // ignored in wall mode
	time.Sleep(time.Millisecond)
	s.Emit("ev")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines(&buf)
	if !strings.Contains(got[0], `"clock":"wall"`) {
		t.Fatalf("meta line: %s", got[0])
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(got[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["t"].(float64) <= 0 {
		t.Fatalf("wall timestamp not positive: %v", ev["t"])
	}
}

func TestCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	r.Stream("s").Emit("ev")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote again")
	}
}

func TestPoolObserver(t *testing.T) {
	r := New(Options{})
	obs := PoolObserver(r)
	obs(4, 10, []int{4, 3, 2, 1}, 5*time.Millisecond)
	obs(2, 6, []int{3, 3}, time.Millisecond)
	if got := r.Counter("pool.batches"); got != 2 {
		t.Fatalf("pool.batches = %d", got)
	}
	if got := r.Counter("pool.tasks"); got != 16 {
		t.Fatalf("pool.tasks = %d", got)
	}
	if r.Counter("pool.drain.ns") < int64(6*time.Millisecond) {
		t.Fatal("pool.drain.ns too small")
	}
	sum := r.Summary()
	if !strings.Contains(sum, "pool.workers.max") || !strings.Contains(sum, "pool.batch.imbalance.max") {
		t.Fatalf("summary missing pool gauges:\n%s", sum)
	}
}

// Events emitted after Close must be dropped and tallied, not buffered:
// buffering them would make Summary report events the flushed trace does not
// contain.
func TestEmitAfterCloseDropsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	s := r.Stream("s")
	s.Emit("before")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	flushed := buf.String()

	s.Emit("after")
	r.Stream("late").Emit("after") // streams created post-Close start closed
	if buf.String() != flushed {
		t.Fatal("post-Close emit reached the sink")
	}
	if got := r.Counter("telemetry.dropped_events"); got != 2 {
		t.Fatalf("telemetry.dropped_events = %d, want 2", got)
	}
	// Summary's event count agrees with the flushed trace: 1 event, not 3.
	sum := r.Summary()
	if !strings.Contains(sum, "2 streams, 1 events") {
		t.Fatalf("summary disagrees with flushed trace:\n%s", sum)
	}
	if n := len(lines(&buf)); n != 2 { // meta + 1 event
		t.Fatalf("trace has %d lines, want 2: %q", n, flushed)
	}
}

// A sink-less recorder still freezes its streams on Close, so the metrics
// summary cannot drift after the run is declared over.
func TestCloseFreezesStreamsWithoutSink(t *testing.T) {
	r := New(Options{})
	s := r.Stream("s")
	s.Emit("before")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	s.Emit("after")
	if got := r.Counter("telemetry.dropped_events"); got != 1 {
		t.Fatalf("telemetry.dropped_events = %d, want 1", got)
	}
	if !strings.Contains(r.Summary(), "1 streams, 1 events") {
		t.Fatalf("summary counted a post-Close event:\n%s", r.Summary())
	}
}

func TestFloatGauges(t *testing.T) {
	r := New(Options{})
	r.GaugeF("best.sdc", 0.4375)
	if v, ok := r.FloatGauge("best.sdc"); !ok || v != 0.4375 {
		t.Fatalf("FloatGauge = %v, %v", v, ok)
	}
	if _, ok := r.FloatGauge("unset"); ok {
		t.Fatal("unset float gauge reported present")
	}
	if !strings.Contains(r.Summary(), "best.sdc") {
		t.Fatalf("summary missing float gauge:\n%s", r.Summary())
	}
	var nilRec *Recorder
	nilRec.GaugeF("g", 1)
	if _, ok := nilRec.FloatGauge("g"); ok {
		t.Fatal("nil recorder float gauge")
	}
}

func TestJSONValueArrays(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	r.Stream("s").Emit("ev",
		F("ints", []int{3, 1}),
		F("i64s", []int64{-2}),
		F("floats", []float64{0.5, 0.25}),
		F("strs", []string{"a", "b\"c"}))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines(&buf)
	var ev map[string]any
	if err := json.Unmarshal([]byte(got[1]), &ev); err != nil {
		t.Fatalf("array event not valid JSON: %v\n%s", err, got[1])
	}
	if !strings.Contains(got[1], `"ints":[3,1]`) ||
		!strings.Contains(got[1], `"floats":[0.5,0.25]`) {
		t.Fatalf("bad array rendering: %s", got[1])
	}
}

func TestJSONValueSpecialFloats(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: &buf})
	r.Stream("s").Emit("ev", F("nan", math.NaN()), F("inf", math.Inf(1)))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for _, line := range lines(&buf) {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON with special floats: %s", line)
		}
	}
}
