package repro

// Parallel-execution benches: each pair runs the same deterministic workload
// at Workers=1 and Workers=4 so `benchstat` (or eyeballing ns/op) shows the
// speedup of the worker-pool layer. The FI-heavy targets (baseline, suite)
// parallelize near-linearly on a multi-core runner; the full search is
// partially serial (breeding, checkpoints, the closing campaign), so its
// speedup is smaller. On a single-core runner (GOMAXPROCS=1) the pairs
// instead demonstrate that the pool adds no overhead and — because results
// are worker-count-invariant — compute the same outputs either way.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// benchSearch runs a reduced PEPPA-X search at the given worker count.
func benchSearch(b *testing.B, workers int) {
	bench := prog.Build("pathfinder")
	opts := core.DefaultOptions()
	opts.Generations = 30
	opts.PopSize = 16
	opts.TrialsPerRep = 8
	opts.FinalTrials = 200
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Search(bench, opts, xrand.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch_Workers1(b *testing.B) { benchSearch(b, 1) }
func BenchmarkSearch_Workers4(b *testing.B) { benchSearch(b, 4) }

// benchBaseline runs the random+FI baseline — the workload the paper calls
// trivially parallel (§5.2): per-candidate 1000-trial campaigns fan out.
func benchBaseline(b *testing.B, workers int) {
	bench := prog.Build("hpccg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RandomSearch(bench, core.BaselineOptions{
			TrialsPerInput: 1000,
			MaxInputs:      4,
			Workers:        workers,
		}, xrand.New(7))
	}
}

func BenchmarkBaseline_Workers1(b *testing.B) { benchBaseline(b, 1) }
func BenchmarkBaseline_Workers4(b *testing.B) { benchBaseline(b, 4) }

// benchSuite regenerates the §3 study plus the Figure 5/7/8 artifacts — the
// concurrent experiment runner over the memoizing suite.
func benchSuiteWorkers(bb *testing.B, workers int) {
	for i := 0; i < bb.N; i++ {
		cfg := experiments.QuickConfig()
		cfg.Benches = []string{"pathfinder"}
		cfg.Workers = workers
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			bb.Fatal(err)
		}
		if _, err := experiments.RunAllStructured(s, []string{"fig1", "table2", "fig5", "fig7", "fig8"}); err != nil {
			bb.Fatal(err)
		}
	}
}

func BenchmarkSuite_Workers1(b *testing.B) { benchSuiteWorkers(b, 1) }
func BenchmarkSuite_Workers4(b *testing.B) { benchSuiteWorkers(b, 4) }
