// Sensitivity: derive a program's SDC sensitivity distribution — the
// stationary per-instruction vulnerability ranking PEPPA-X searches by —
// and show the FI-space pruning that makes it cheap (§4.2.2-4.2.3).
//
// Run: go run ./examples/sensitivity [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/sensitivity"
	"repro/internal/xrand"
)

func main() {
	name := "needle"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := prog.Build(name)
	rng := xrand.New(7)

	// Step 1: a small FI input with reference-level coverage.
	small, err := core.FindSmallFIInput(bench, 0.95, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small FI input for %s: %v\n", name, small.Input)
	fmt.Printf("  coverage %.2f (reference %.2f), workload %d dyn instrs (reference %d)\n\n",
		small.Coverage, small.RefCoverage, small.Golden.DynCount, small.RefDynCount)

	// Step 2: static pruning.
	pr := analysis.Prune(bench.Module)
	fmt.Printf("pruning: %d FI sites -> %d representatives (%.1f%% pruned)\n\n",
		bench.Prog.NumInstrs(), pr.NumRepresentatives(), pr.Ratio(bench.Prog.NumInstrs())*100)

	// Step 3: reduced FI simulation for SDC scores.
	dist := sensitivity.Derive(bench.Prog, small.Golden, sensitivity.Options{
		TrialsPerRep: 30, UsePruning: true,
	}, rng)
	fmt.Printf("derived distribution with %d FI trials (%.1fM dyn instrs)\n\n",
		dist.FITrials, float64(dist.FIDynInstrs)/1e6)

	// The most SDC-prone instructions.
	type scored struct {
		id    int
		score float64
	}
	var list []scored
	for id, s := range dist.Scores {
		list = append(list, scored{id, s})
	}
	sort.Slice(list, func(a, b int) bool { return list[a].score > list[b].score })
	instrs := bench.Module.Instrs()
	fmt.Println("top 10 most SDC-sensitive static instructions:")
	for i := 0; i < 10 && i < len(list); i++ {
		in := instrs[list[i].id]
		fmt.Printf("  ID%-5d score %.2f  %-9s (block %s, fn %s)\n",
			list[i].id, list[i].score, in.Op, in.Block.Name, in.Block.Fn.Name)
	}
}
