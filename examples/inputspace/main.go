// Inputspace: draw an ASCII heat map of a benchmark's SDC probability over
// a two-argument slice of its input space — the Figure 6 view that explains
// when PEPPA-X beats random search (sparse maps) and when random search is
// already enough (dense maps).
//
// Run: go run ./examples/inputspace [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	name := "pathfinder"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	cfg := experiments.QuickConfig()
	cfg.HeatmapGrid = 10
	cfg.HeatmapTrials = 150
	cfg.Benches = []string{name}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.Figure6(suite, []string{name})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println("darker (higher digits) = higher SDC probability. If high cells are rare, random")
	fmt.Println("input generation will almost never land on them — that is the regime where the")
	fmt.Println("guided PEPPA-X search pays off (paper Figure 6, Pathfinder vs Hpccg).")
}
