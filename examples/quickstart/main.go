// Quickstart: find an SDC-bound input for a benchmark in a few seconds.
//
// This walks the whole PEPPA-X pipeline on Pathfinder with a small budget:
// fuzz a small FI input, derive the SDC sensitivity distribution with
// pruned fault injections, genetically search the input space with the
// cheap dynamic fitness, and FI-validate the reported input — then compare
// against the benchmark's default reference input.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/xrand"
)

func main() {
	bench := prog.Build("pathfinder")
	rng := xrand.New(2021)

	opts := core.DefaultOptions()
	opts.Generations = 60
	opts.FinalTrials = 500

	res, err := core.Search(bench, opts, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark:       %s — %s\n", bench.Name, bench.Description)
	fmt.Printf("SDC-bound input: %v\n", res.BestInput)
	lo, hi := res.SDCInterval()
	fmt.Printf("SDC probability: %.1f%% (95%% CI [%.1f%%, %.1f%%], %d FI trials)\n\n",
		res.SDCBound()*100, lo*100, hi*100, res.Final.Trials)

	// How over-optimistic would an evaluation with the suite's default
	// reference input have been?
	ref, err := campaign.NewGolden(bench.Prog, bench.Encode(bench.RefInput()), bench.MaxDyn)
	if err != nil {
		log.Fatal(err)
	}
	refCounts := campaign.Overall(bench.Prog, ref, opts.FinalTrials, rng)
	fmt.Printf("reference input: %v\n", bench.RefInput())
	fmt.Printf("SDC probability: %.1f%%\n\n", refCounts.SDCProbability()*100)

	gap := res.SDCBound() - refCounts.SDCProbability()
	fmt.Printf("evaluating with the reference input underestimates the SDC bound by %.1f points;\n", gap*100)
	fmt.Printf("a reliability target set from it would be violated by inputs like %v.\n", res.BestInput)
}
