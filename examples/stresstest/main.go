// Stresstest: the §6 case study in miniature. Protect a benchmark with
// selective instruction duplication chosen by 0-1 knapsack from
// reference-input profiles, measure the expected SDC coverage, then stress
// test the protected program with a PEPPA-X SDC-bound input and watch the
// coverage collapse.
//
// Run: go run ./examples/stresstest [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/duplication"
	"repro/internal/prog"
	"repro/internal/xrand"
)

func main() {
	name := "pathfinder"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := prog.Build(name)
	rng := xrand.New(99)

	// Find an SDC-bound input first.
	opts := core.DefaultOptions()
	opts.Generations = 60
	opts.FinalTrials = 400
	search, err := core.Search(bench, opts, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: SDC-bound input %v (SDC %.1f%%)\n\n",
		name, search.BestInput, search.SDCBound()*100)

	refGolden, err := campaign.NewGolden(bench.Prog, bench.Encode(bench.RefInput()), bench.MaxDyn)
	if err != nil {
		log.Fatal(err)
	}
	boundGolden, err := campaign.NewGolden(bench.Prog, bench.Encode(search.BestInput), bench.MaxDyn)
	if err != nil {
		log.Fatal(err)
	}

	// Profile per-instruction SDC probabilities with the reference input —
	// exactly what published selective-duplication deployments do.
	fmt.Println("profiling per-instruction SDC probabilities on the reference input...")
	profiles := duplication.Profile(bench.Prog, refGolden, 30, rng)

	levels := []float64{0.3, 0.5, 0.7}
	results := duplication.StressTest(bench.Prog, refGolden, boundGolden, profiles, levels, 500, rng)

	fmt.Printf("\n%-10s %-12s %-20s %-20s\n", "level", "protected", "expected coverage", "actual (SDC-bound)")
	for _, r := range results {
		fmt.Printf("%-10s %-12d %-20s %-20s\n",
			fmt.Sprintf("%.0f%%", r.Level*100),
			len(r.Protection.Protected),
			fmt.Sprintf("%.1f%%", r.Expected.Coverage*100),
			fmt.Sprintf("%.1f%%", r.Actual.Coverage*100))
	}
	worst := 0.0
	for _, r := range results {
		if gap := r.Expected.Coverage - r.Actual.Coverage; gap > worst {
			worst = gap
		}
	}
	if worst > 0.02 {
		fmt.Printf("\nthe reference-input protection loses up to %.1f coverage points under the SDC-bound\n", worst*100)
		fmt.Println("input: developers relying on the expected numbers over-trust the protection (paper §6).")
	} else {
		fmt.Println("\nthis program's SDC mass is stable across the two inputs, so the protection transfers —")
		fmt.Println("the paper observes the same for CoMD and FFT (§6); see EXPERIMENTS.md for the analysis.")
	}
}
