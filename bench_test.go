package repro

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out. Each
// target runs its experiment at reduced (quick) scale on a benchmark subset
// so `go test -bench=.` finishes in minutes; cmd/experiments runs the
// full-scale versions. Custom metrics surface the experiment's headline
// number so bench output doubles as a result summary.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// benchSuite builds a quick-config suite for the given benchmarks.
func benchSuite(b *testing.B, benches ...string) *experiments.Suite {
	b.Helper()
	cfg := experiments.QuickConfig()
	if len(benches) > 0 {
		cfg.Benches = benches
	}
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTable1_StaticInstructions(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		r := experiments.Table1(s)
		total = 0
		for _, row := range r.Rows {
			total += row.StaticInstrs
		}
	}
	b.ReportMetric(float64(total), "static-instrs")
}

func BenchmarkFigure1_OverallSDCRange(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder", "needle")
		r, err := experiments.Figure1(s)
		if err != nil {
			b.Fatal(err)
		}
		spread = 0
		for _, row := range r.Rows {
			spread += row.MaxSDC - row.MinSDC
		}
	}
	b.ReportMetric(spread*100, "sdc-range-pts")
}

func BenchmarkTable2_CoverageCorrelation(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder", "needle")
		r, err := experiments.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Avg
	}
	b.ReportMetric(avg, "avg-rho")
}

func BenchmarkFigure2_PerInstructionRange(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "comd")
		r, err := experiments.Figure2(s, "comd", 10)
		if err != nil {
			b.Fatal(err)
		}
		spread = 0
		for _, row := range r.Sampled {
			spread += row.Max - row.Min
		}
	}
	b.ReportMetric(spread*100, "instr-range-pts")
}

func BenchmarkTable3_RankStability(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Avg
	}
	b.ReportMetric(avg, "avg-rho")
}

func BenchmarkTable4_PruningRatio(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		avg = experiments.Table4(s).Avg
	}
	b.ReportMetric(avg*100, "avg-prune-pct")
}

func BenchmarkTable5_SensitivityAnalysisCost(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.AvgSpeedup
	}
	b.ReportMetric(speedup, "heuristic-speedup-x")
}

func BenchmarkFigure5_BoundingSDC(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.Figure5(s)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Benches[0].Points[len(r.Benches[0].Points)-1]
		gap = last.PeppaSDC - last.BaselineSDC
	}
	b.ReportMetric(gap*100, "peppa-minus-baseline-pts")
}

func BenchmarkFigure6_HeatMaps(b *testing.B) {
	var pctile float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.Figure6(s, []string{"pathfinder"})
		if err != nil {
			b.Fatal(err)
		}
		pctile = r.Maps[0].RandomPercentile
	}
	b.ReportMetric(pctile*100, "mean-input-pctile")
}

func BenchmarkFigure7_Baseline5x(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.Rows[0].PeppaSDC - r.Rows[0].Baseline5xSDC
	}
	b.ReportMetric(gap*100, "peppa-minus-5xbaseline-pts")
}

func BenchmarkFigure8_TimeBreakdown(b *testing.B) {
	var fixedShare float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		fixedShare = float64(last.SensitivityDyn) / float64(last.TotalDyn)
	}
	b.ReportMetric(fixedShare*100, "fixed-cost-share-pct")
}

func BenchmarkTable6_PerInputCost(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.Table6(s)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.AvgRatio
	}
	b.ReportMetric(ratio, "baseline-over-peppa-x")
}

func BenchmarkFigure9_StressTest(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.Figure9(s)
		if err != nil {
			b.Fatal(err)
		}
		loss = 0
		for _, c := range r.Cells {
			loss += c.Expected - c.Actual
		}
		loss /= float64(len(r.Cells))
	}
	b.ReportMetric(loss*100, "coverage-loss-pts")
}

// Ablation benches (DESIGN.md §5).

func BenchmarkAblation_PruningBoundaries(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.AblationPruningBoundaries(s, "pathfinder")
		if err != nil {
			b.Fatal(err)
		}
		delta = r.RhoWith - r.RhoWithout
	}
	b.ReportMetric(delta, "rho-gain-from-boundaries")
}

func BenchmarkAblation_CoverageFitness(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.AblationFitness(s, "needle")
		if err != nil {
			b.Fatal(err)
		}
		gap = r.ScoreFitnessSDC - r.CoverageFitnessSDC
	}
	b.ReportMetric(gap*100, "score-minus-coverage-pts")
}

func BenchmarkAblation_RandomWithFitness(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.AblationFitness(s, "needle")
		if err != nil {
			b.Fatal(err)
		}
		gap = r.ScoreFitnessSDC - r.RandomSamplingSDC
	}
	b.ReportMetric(gap*100, "ga-minus-random-pts")
}

func BenchmarkAblation_SensitivityTrials(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "pathfinder")
		r, err := experiments.AblationSensitivityTrials(s, "pathfinder", 30, 100)
		if err != nil {
			b.Fatal(err)
		}
		rho = r.Rho
	}
	b.ReportMetric(rho, "30v100-rank-rho")
}

// Substrate micro-benchmarks.

func BenchmarkInterp_Throughput(b *testing.B) {
	bench := prog.Build("pathfinder")
	in := bench.Encode(bench.RefInput())
	var dyn int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := runGolden(b, bench, in)
		dyn = r
	}
	b.ReportMetric(float64(dyn), "dyn-instrs/op")
}

func BenchmarkCampaign_1000Trials(b *testing.B) {
	bench := prog.Build("needle")
	in := bench.Encode(bench.RefInput())
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCampaign(b, bench, in, 1000, rng)
	}
}

// Extension-experiment benches.

func BenchmarkExtension_PassCheck(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.PassCheck(s)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.Rows[0].ModelSDC - r.Rows[0].PassSDC
	}
	b.ReportMetric(gap*100, "model-minus-pass-pts")
}

func BenchmarkExtension_MultiBit(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.MultiBit(s)
		if err != nil {
			b.Fatal(err)
		}
		delta = r.Rows[0].Delta
	}
	b.ReportMetric(delta*100, "single-vs-double-pts")
}

func BenchmarkExtension_Propagation(b *testing.B) {
	var reach float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.Propagation(s)
		if err != nil {
			b.Fatal(err)
		}
		reach = r.Rows[0].SDCReach
	}
	b.ReportMetric(reach*100, "sdc-reach-pct")
}

func BenchmarkExtension_Strategies(b *testing.B) {
	var bestSDC float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.Strategies(s)
		if err != nil {
			b.Fatal(err)
		}
		bestSDC = 0
		for _, row := range r.Rows {
			if row.SDC > bestSDC {
				bestSDC = row.SDC
			}
		}
	}
	b.ReportMetric(bestSDC*100, "best-strategy-sdc-pct")
}

func BenchmarkExtension_OptLevel(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, "needle")
		r, err := experiments.OptLevel(s)
		if err != nil {
			b.Fatal(err)
		}
		shift = r.Rows[0].SDCOpt - r.Rows[0].SDCO0
	}
	b.ReportMetric(shift*100, "opt-sdc-shift-pts")
}
