package repro

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/interp"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// runGolden executes a fault-free run and returns its dynamic count.
func runGolden(b *testing.B, bench *prog.Benchmark, in []uint64) int64 {
	b.Helper()
	r := interp.Run(bench.Prog, in, interp.Options{MaxDyn: bench.MaxDyn})
	if r.Trap != nil || r.BudgetExceeded {
		b.Fatalf("golden run failed: %v", r.Trap)
	}
	return r.DynCount
}

// runCampaign executes a statistical FI campaign.
func runCampaign(b *testing.B, bench *prog.Benchmark, in []uint64, trials int, rng *xrand.RNG) {
	b.Helper()
	g, err := campaign.NewGolden(bench.Prog, in, bench.MaxDyn)
	if err != nil {
		b.Fatal(err)
	}
	campaign.Overall(bench.Prog, g, trials, rng)
}
